// The Ampere controller (Algorithm 1 of the paper).
//
// Once per minute, for every control domain (a row, or a virtual group in
// the controlled-experiment methodology), the controller:
//   1. reads the domain's latest aggregated power from the monitor,
//   2. computes the freezing ratio u_t from the SPCP closed form with the
//      hour-of-day E_t margin (Fig. 6),
//   3. selects the n_freeze highest-power servers, expanded by the r_stable
//      hysteresis band so a server whose power decayed only slightly is not
//      churned out of the frozen set, and
//   4. reconciles the actual frozen set through the scheduler's only two
//      power-control APIs: Freeze and Unfreeze.
//
// The controller is stateless in the paper's sense: everything it needs is
// re-derivable from the monitor and the scheduler's frozen flags, so a
// replacement instance can take over at any tick (§3.2). The cached frozen
// sets here are an optimization, re-buildable via RebuildStateFromScheduler.

#ifndef SRC_CORE_CONTROLLER_H_
#define SRC_CORE_CONTROLLER_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/common/rng.h"
#include "src/control/et_estimator.h"
#include "src/control/freeze_effect.h"
#include "src/control/online_predictor.h"
#include "src/obs/journal.h"
#include "src/obs/metrics.h"
#include "src/sched/scheduler.h"
#include "src/telemetry/power_monitor.h"

namespace ampere {

struct ControlDomain {
  // Monitor group name whose aggregated power this domain tracks.
  std::string group;
  // Schedulable servers under control (reserved servers excluded).
  std::vector<ServerId> servers;
  // The provisioned power budget P_M for the domain, in watts. The operator
  // may set it below the physical limit for an extra margin (§3.2).
  double budget_watts = 0.0;
};

// Which servers to freeze first. The paper freezes the highest-power
// servers (§3.5): they drain the most power and have the least spare
// capacity, so freezing them costs the least. The alternatives exist for the
// design-choice ablation bench.
enum class FreezeSelection : int {
  kHighestPower = 0,
  kRandom = 1,
  kLowestPower = 2,
};

struct AmpereControllerConfig {
  FreezeEffectModel effect{0.05};
  EtEstimator et = EtEstimator::Constant(0.025);
  // Operational cap on the freezing ratio (§4.1.1 uses 50 %).
  double max_freeze_ratio = 0.5;
  // Hysteresis: a frozen server stays freezable while its power is above
  // r_stable times the lowest power in the target set (§3.5 uses 0.8).
  double r_stable = 0.8;
  FreezeSelection selection = FreezeSelection::kHighestPower;
  // Seed for the kRandom selection policy's tie-breaking stream.
  uint64_t selection_seed = 1;
  // Extension (§3.6 future work): derive E_t from an online AR(1) predictor
  // over the live power stream instead of the static `et` profile.
  bool use_online_predictor = false;
  OnlinePredictorParams predictor;
  // RHC planning horizon N (§3.6's general PCP). The controller forecasts
  // E over the next N intervals from the E_t profile, solves the horizon-N
  // problem, and carries out only the first control. Lemma 3.1 proves this
  // equals the closed-form horizon-1 policy for linear f(u) — which the
  // extension_rhc_horizon bench verifies live. Requires >= 1; 1 uses the
  // Eq. (13) closed form directly.
  int horizon = 1;
  // Ring capacity of the per-controller DecisionJournal (the production
  // daemon's decision audit log, §3.2): one record per tick per domain,
  // 4096 covers a 24 h fig10 day (1440 minute-ticks x 2 arms) without
  // eviction. 0 disables journaling entirely.
  size_t journal_capacity = 4096;
  // Window, in records per domain, of the journal-fed model-drift gauges
  // (controller.model_rmse.* / controller.et_margin_util.*). 60 one-minute
  // ticks = the paper's hourly E_t cadence.
  size_t drift_window = 60;

  // --- Graceful degradation under faulty telemetry ---
  // A domain reading older than this is *stale*: the tick still runs, but on
  // last-known-good power with the E_t margin widened in proportion to the
  // reading's age (E_t is the per-minute 99.5p increase, so an m-minute-old
  // reading may have drifted by m·E_t). 1.5 control intervals by default so
  // ordinary sampling jitter never triggers it.
  SimTime stale_after = SimTime::Seconds(90);
  // A reading older than this — or a feed flagged blacked-out, or a domain
  // never sampled at all — is not trusted: the tick holds the current frozen
  // set rather than act on garbage (skip, don't guess), and journals the
  // skip as DegradedMode::kBlackoutSkip.
  SimTime blackout_after = SimTime::Minutes(5);
};

class AmpereController {
 public:
  // `scheduler` and `monitor` must outlive the controller.
  AmpereController(Scheduler* scheduler, const PowerMonitor* monitor,
                   const AmpereControllerConfig& config);

  void AddDomain(ControlDomain domain);

  // Schedules a periodic tick. Offset ticks slightly after the monitor's
  // sampling instants so each decision sees fresh data. The task is bound
  // to this instance's lifetime: after destruction (a failover replacing
  // the controller, §3.2) pending ticks become no-ops.
  void Start(Simulation* sim, SimTime first_tick,
             SimTime interval = SimTime::Minutes(1));

  // One control pass over all domains (public for tests and custom benches).
  void Tick(SimTime now);

  // Drops cached frozen sets and re-reads them from the scheduler — the
  // failover path of a stateless controller replacement.
  void RebuildStateFromScheduler();

  size_t num_domains() const { return domains_.size(); }

  // Re-targets one domain's power budget P_M mid-run, in watts. This is the
  // campus-federation hook: the hierarchical allocator re-divides the campus
  // contract across DCs and pushes each DC's share here between ticks. The
  // inner control loop is untouched — the next tick simply normalizes
  // against the new budget. Must be called from the simulation thread.
  void SetDomainBudget(size_t domain_index, double budget_watts);
  double domain_budget(size_t domain_index) const {
    return domains_[domain_index].budget_watts;
  }

  // Current freezing ratio |S_f| / n for one domain.
  double freeze_ratio(size_t domain_index) const;
  size_t frozen_count(size_t domain_index) const {
    return frozen_[domain_index].size();
  }
  uint64_t freeze_ops() const { return freeze_ops_; }
  uint64_t unfreeze_ops() const { return unfreeze_ops_; }
  uint64_t ticks() const { return ticks_; }

  // Degradation bookkeeping (all zero on fault-free runs).
  uint64_t degraded_ticks() const { return degraded_ticks_; }
  uint64_t blackout_skips() const { return blackout_skips_; }
  uint64_t stale_fallbacks() const { return stale_fallbacks_; }
  uint64_t rpc_failures() const { return rpc_failures_; }
  uint64_t rpc_giveups() const { return rpc_giveups_; }
  // Accounted (not event-injected) freeze/unfreeze RPC latency, summed.
  SimTime rpc_latency_total() const { return rpc_latency_total_; }

  // The decision audit log: one record per tick per domain (empty when
  // config.journal_capacity == 0). Each tick also backfills the previous
  // record's realized next-minute power, so resolved records carry a
  // (predicted, realized) pair for the f(u) = kr·u model.
  const obs::DecisionJournal& journal() const { return journal_; }

  // Metrics/timeline domain this controller's instrumentation is scoped
  // under ("dc2/" in a campus; the root domain, 0, standalone). Purely
  // observational: prefixes metric names and labels flight-recorder events,
  // never feeds back into control.
  void SetObsDomain(obs::DomainId domain) { obs_domain_ = domain; }
  obs::DomainId obs_domain() const { return obs_domain_; }

 private:
  void TickDomain(size_t domain_index, SimTime now);
  void UnfreezeAll(size_t domain_index);
  // Fallible scheduler RPCs (infallible without an injector attached to the
  // scheduler). Return overall success after the scheduler's bounded
  // retries; on failure the op did not happen and per-tick counters record
  // the adversity.
  bool RpcFreeze(ServerId id);
  bool RpcUnfreeze(ServerId id);
  void AccountRpc(const RpcResult& result);
  // Domain servers ordered most-preferred-to-freeze first per the
  // configured selection policy.
  std::vector<ServerId> RankServers(const ControlDomain& domain);

  Scheduler* scheduler_;
  const PowerMonitor* monitor_;
  AmpereControllerConfig config_;
  Rng selection_rng_{1};
  std::vector<ControlDomain> domains_;
  std::vector<std::unordered_set<ServerId>> frozen_;
  std::vector<OnlineEtPredictor> predictors_;  // One per domain if enabled.
  obs::DecisionJournal journal_;
  obs::DomainId obs_domain_ = 0;
  // Previous tick's degradation mode per domain, for flight-recorder
  // degraded-mode edge events (enter/exit fire on transitions only).
  std::vector<obs::DegradedMode> prev_mode_;
  // Tick timestamp in flight, so RPC helpers can stamp timeline events.
  SimTime tick_now_;
  // Last journal seq per domain, awaiting realized-power backfill.
  std::vector<std::optional<uint64_t>> pending_realized_;
  uint64_t freeze_ops_ = 0;
  uint64_t unfreeze_ops_ = 0;
  uint64_t ticks_ = 0;
  // Degradation bookkeeping (run totals + per-tick deltas for the journal).
  uint64_t degraded_ticks_ = 0;
  uint64_t blackout_skips_ = 0;
  uint64_t stale_fallbacks_ = 0;
  uint64_t rpc_failures_ = 0;
  uint64_t rpc_giveups_ = 0;
  SimTime rpc_latency_total_;
  uint32_t tick_rpc_failures_ = 0;
  uint32_t tick_rpc_giveups_ = 0;
  // Lifetime token for scheduled ticks; expires with the controller.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace ampere

#endif  // SRC_CORE_CONTROLLER_H_
