// Multi-row fleet assembly for observational studies (Figs. 1-2) and
// multi-domain control (the production deployment shape).
//
// §2.2: "different rows mainly focus on running different sets of products",
// which makes cross-row power weakly correlated and unbalanced. Fleet builds
// one data center with one scheduler and one row-affine workload generator
// per row, each with its own load level, diurnal phase, and wander, so the
// fleet reproduces the spatial and temporal variation the paper reports.

#ifndef SRC_CORE_FLEET_H_
#define SRC_CORE_FLEET_H_

#include <memory>
#include <vector>

#include "src/cluster/datacenter.h"
#include "src/common/rng.h"
#include "src/sched/scheduler.h"
#include "src/sim/simulation.h"
#include "src/telemetry/power_monitor.h"
#include "src/telemetry/timeseries_db.h"
#include "src/workload/batch_workload.h"

namespace ampere {

// Per-row "product" workload description.
struct RowProduct {
  // Steady-state row power as a fraction of the row's rated budget.
  double target_power = 0.80;
  double peak_hour = 14.0;          // Diurnal phase.
  double diurnal_amplitude = 0.15;
  double ar_sigma = 0.02;           // Slow wander strength.
  double burst_prob = 0.01;         // Minute-scale spike likelihood.
  double burst_factor = 1.6;
};

struct FleetConfig {
  uint64_t seed = 42;
  TopologyConfig topology;          // topology.num_rows rows.
  SchedulerConfig scheduler;
  PowerMonitorConfig monitor;
  // One entry per row; if shorter than num_rows, the last entry repeats.
  std::vector<RowProduct> products;
  // Additional fleet-wide demand with NO row affinity (expressed as the
  // per-row power it adds on average, as a fraction of rated budget). This
  // is the steerable share: schedulers and Ampere can move it between rows,
  // which purely row-pinned products do not allow. 0 disables it.
  RowProduct flexible;
  double flexible_target_power = 0.0;
  DurationModelParams durations;
};

// Summary of one fleet run, in harness-friendly form.
struct FleetRowSummary {
  double p_mean = 0.0;  // Row power / rated row budget, mean over samples.
  double p_max = 0.0;
};

struct FleetResult {
  std::vector<FleetRowSummary> rows;
  double dc_mean_watts = 0.0;
  double dc_max_watts = 0.0;
  uint64_t jobs_submitted = 0;
  uint64_t jobs_completed = 0;
};

// Pure entry point for the parallel scenario harness: builds a fresh Fleet,
// runs it until `until`, and summarizes the telemetry. Like
// RunExperimentToResult, this touches no global mutable state (the Fleet
// instance owns its RNG streams, clock, and stores), so concurrent calls
// are safe and results are a deterministic function of (config, until).
FleetResult RunFleetToResult(const FleetConfig& config, SimTime until);

class Fleet {
 public:
  explicit Fleet(const FleetConfig& config);

  // Starts all generators and the monitor, then runs until `until`.
  void Run(SimTime until);

  Simulation& sim() { return sim_; }
  DataCenter& dc() { return dc_; }
  Scheduler& scheduler() { return scheduler_; }
  PowerMonitor& monitor() { return monitor_; }
  TimeSeriesDb& db() { return db_; }

  // The arrival rate assigned to a row's product generator.
  double row_rate_per_min(RowId row) const {
    return row_rates_[row.index()];
  }

 private:
  FleetConfig config_;
  Rng rng_;
  Simulation sim_;
  DataCenter dc_;
  TimeSeriesDb db_;
  Scheduler scheduler_;
  PowerMonitor monitor_;
  JobIdAllocator ids_;
  std::vector<std::unique_ptr<BatchWorkload>> workloads_;
  std::vector<double> row_rates_;
  bool started_ = false;
};

}  // namespace ampere

#endif  // SRC_CORE_FLEET_H_
