#include "src/core/controller.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/log.h"
#include "src/control/pcp.h"
#include "src/control/spcp.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace ampere {

AmpereController::AmpereController(Scheduler* scheduler,
                                   const PowerMonitor* monitor,
                                   const AmpereControllerConfig& config)
    : scheduler_(scheduler), monitor_(monitor), config_(config),
      selection_rng_(config.selection_seed),
      journal_(config.journal_capacity == 0 ? 1 : config.journal_capacity) {
  AMPERE_CHECK(scheduler != nullptr && monitor != nullptr);
  AMPERE_CHECK(config.r_stable > 0.0 && config.r_stable <= 1.0);
  AMPERE_CHECK(config.max_freeze_ratio > 0.0 &&
               config.max_freeze_ratio <= 1.0);
}

std::vector<ServerId> AmpereController::RankServers(
    const ControlDomain& domain) {
  std::vector<ServerId> ranked = domain.servers;
  // Power readings are stable for the whole sort (no mutation happens
  // between comparisons), so the power-ranked policies sort (watts, id)
  // pairs read once per server instead of calling LatestServerWatts()
  // O(n log n) times from the comparator. The comparators below return the
  // same result for every pair as the previous read-in-comparator form, so
  // std::sort — a deterministic algorithm — produces the identical
  // permutation.
  auto sort_by_key = [&](bool highest_first) {
    std::vector<std::pair<double, ServerId>> keyed;
    keyed.reserve(ranked.size());
    for (ServerId id : ranked) {
      keyed.emplace_back(monitor_->LatestServerWatts(id), id);
    }
    std::sort(keyed.begin(), keyed.end(),
              [highest_first](const std::pair<double, ServerId>& a,
                              const std::pair<double, ServerId>& b) {
                if (a.first != b.first) {
                  return highest_first ? a.first > b.first : a.first < b.first;
                }
                return a.second < b.second;  // Deterministic tie-break.
              });
    for (size_t i = 0; i < keyed.size(); ++i) {
      ranked[i] = keyed[i].second;
    }
  };
  switch (config_.selection) {
    case FreezeSelection::kHighestPower:
      sort_by_key(/*highest_first=*/true);
      break;
    case FreezeSelection::kLowestPower:
      sort_by_key(/*highest_first=*/false);
      break;
    case FreezeSelection::kRandom:
      for (size_t i = ranked.size(); i > 1; --i) {
        size_t j = static_cast<size_t>(
            selection_rng_.UniformInt(0, static_cast<int64_t>(i) - 1));
        std::swap(ranked[i - 1], ranked[j]);
      }
      break;
  }
  return ranked;
}

void AmpereController::AddDomain(ControlDomain domain) {
  AMPERE_CHECK(!domain.servers.empty());
  AMPERE_CHECK(domain.budget_watts > 0.0);
  domains_.push_back(std::move(domain));
  frozen_.emplace_back();
  predictors_.emplace_back(config_.predictor);
  prev_mode_.push_back(obs::DegradedMode::kNone);
  pending_realized_.emplace_back();
}

void AmpereController::SetDomainBudget(size_t domain_index,
                                       double budget_watts) {
  AMPERE_CHECK(domain_index < domains_.size());
  AMPERE_CHECK(budget_watts > 0.0);
  domains_[domain_index].budget_watts = budget_watts;
}

void AmpereController::Start(Simulation* sim, SimTime first_tick,
                             SimTime interval) {
  AMPERE_CHECK(sim != nullptr);
  sim->SchedulePeriodic(
      first_tick, interval,
      [this, weak = std::weak_ptr<bool>(alive_)](SimTime t) {
        if (weak.expired()) {
          return;  // The controller was replaced; this tick is orphaned.
        }
        Tick(t);
      });
}

void AmpereController::Tick(SimTime now) {
  AMPERE_METRICS_DOMAIN(obs_domain_);
  AMPERE_SPAN("controller.tick");
  ++ticks_;
  tick_now_ = now;
  AMPERE_COUNTER_ADD("controller.ticks", 1);
  for (size_t d = 0; d < domains_.size(); ++d) {
    TickDomain(d, now);
  }
}

void AmpereController::TickDomain(size_t domain_index, SimTime now) {
  const ControlDomain& domain = domains_[domain_index];
  std::unordered_set<ServerId>& frozen_set = frozen_[domain_index];
  const uint64_t freeze_ops_before = freeze_ops_;
  const uint64_t unfreeze_ops_before = unfreeze_ops_;
  const bool journal_on = config_.journal_capacity > 0;
  tick_rpc_failures_ = 0;
  tick_rpc_giveups_ = 0;

  // Read the domain feed with its freshness tags. On a fault-free run the
  // reading is always fresh and non-blacked, making this path equivalent to
  // the plain LatestGroupWatts() read it replaces.
  const PowerReading reading = monitor_->LatestGroupReading(domain.group, now);
  const SimTime age = reading.Age(now);
  obs::DegradedMode mode = obs::DegradedMode::kNone;
  if (reading.blacked_out || !reading.valid() ||
      age > config_.blackout_after) {
    mode = obs::DegradedMode::kBlackoutSkip;
  } else if (age > config_.stale_after) {
    mode = obs::DegradedMode::kStaleFallback;
  }

  double power = reading.watts;
  double p = power / domain.budget_watts;

  AMPERE_TIMELINE(now, obs::TimelineEventType::kTickBegin, power,
                  domain.budget_watts, domain_index);
  // Degraded-mode edges: one enter event when a domain leaves kNone, one
  // exit when it recovers — not one event per degraded tick.
  if (mode != prev_mode_[domain_index]) {
    if (prev_mode_[domain_index] == obs::DegradedMode::kNone) {
      AMPERE_TIMELINE(now, obs::TimelineEventType::kDegradedEnter,
                      static_cast<double>(static_cast<uint32_t>(mode)),
                      reading.valid() ? age.minutes() : -1.0, domain_index);
    } else if (mode == obs::DegradedMode::kNone) {
      AMPERE_TIMELINE(
          now, obs::TimelineEventType::kDegradedExit,
          static_cast<double>(static_cast<uint32_t>(prev_mode_[domain_index])),
          0.0, domain_index);
    }
    prev_mode_[domain_index] = mode;
  }

  // Resolve the previous tick's prediction: this minute's observed power is
  // the "realized next-minute power" of the record written one tick ago.
  // Only a *fresh* reading qualifies — backfilling a prediction with stale
  // telemetry would poison the model-drift statistics.
  if (journal_on && pending_realized_[domain_index].has_value()) {
    if (mode == obs::DegradedMode::kNone) {
      journal_.SetRealized(*pending_realized_[domain_index], p);
    }
    pending_realized_[domain_index].reset();
  }

  double et;
  if (config_.use_online_predictor) {
    // Never feed stale observations into the live predictor.
    if (mode == obs::DegradedMode::kNone) {
      predictors_[domain_index].Observe(p);
    }
    et = predictors_[domain_index].Margin();
  } else {
    et = config_.et.Estimate(now);
  }
  // Stale fallback: the tick still runs on last-known-good power, but the
  // margin widens with the reading's age — E_t is the per-minute 99.5p
  // increase, so an m-minute-old value may have drifted by m·E_t.
  double et_eff = et;
  if (mode == obs::DegradedMode::kStaleFallback) {
    et_eff = et * std::max(1.0, age.minutes());
  }

  size_t n = domain.servers.size();
  double u = 0.0;
  size_t n_freeze = 0;

  // r_stable hysteresis state for the decision journal; only the
  // highest-power policy defines a power threshold.
  uint32_t pool_size = 0;
  double p_threshold = 0.0;

  if (mode == obs::DegradedMode::kBlackoutSkip) {
    // Skip, don't guess: the feed is dark (or was never sampled), so any
    // control action would be driven by garbage. Hold the frozen set.
    n_freeze = frozen_set.size();
    u = n > 0 ? static_cast<double>(n_freeze) / static_cast<double>(n) : 0.0;
  } else {
    if (config_.horizon <= 1) {
      u = FreezeRatioFor(p, et_eff, 1.0, config_.effect.kr(),
                         config_.max_freeze_ratio);
    } else {
      // Receding-horizon plan over the next N intervals; only u[0] is
      // carried out (§3.6). The E forecast reads the estimator at each
      // future minute (the online predictor extrapolates its current
      // margin). Under stale fallback the widened margin seeds the first
      // interval; later intervals read the profile as usual.
      PcpProblem problem;
      problem.p0 = p;
      problem.pm = 1.0;
      double kr = config_.effect.kr();
      problem.f = [kr](double v) { return kr * v; };
      for (int k = 0; k < config_.horizon; ++k) {
        double e_k = config_.use_online_predictor
                         ? et
                         : config_.et.Estimate(now + SimTime::Minutes(k));
        if (k == 0) e_k = et_eff;
        problem.e.push_back(e_k);
      }
      PcpSolution plan = SolvePcpGreedy(problem);
      u = std::min(plan.u.front(), config_.max_freeze_ratio);
    }
    n_freeze = static_cast<size_t>(std::floor(u * static_cast<double>(n)));
  }

  if (mode == obs::DegradedMode::kBlackoutSkip) {
    // No reconciliation: scheduler state and cached set stay untouched.
  } else if (n_freeze == 0) {
    // Below threshold (or rounding swallowed the ratio): release everything.
    UnfreezeAll(domain_index);
  } else {
    // Rank the domain's servers most-preferred-to-freeze first. The paper's
    // policy (highest power first) costs the least spare capacity (§3.5) and
    // maximizes the drain effect; alternatives serve the ablation bench.
    std::vector<ServerId> ranked = RankServers(domain);
    n_freeze = std::min(n_freeze, ranked.size());

    // Candidate pool S: the n_freeze top servers, expanded by a hysteresis
    // band so small power decays do not churn the frozen set (Algorithm 1,
    // lines 7-10). For the power-ranked paper policy the band is r_stable
    // times the weakest top-set member's power; for the ablation policies the
    // pool simply retains currently frozen servers.
    // Sized up front to avoid incremental rehashing; the pool is only ever
    // queried (contains/size), never iterated, so its bucket layout cannot
    // influence any decision.
    std::unordered_set<ServerId> pool;
    pool.reserve(ranked.size() + frozen_set.size());
    if (config_.selection == FreezeSelection::kHighestPower) {
      double p_min_top = monitor_->LatestServerWatts(ranked[n_freeze - 1]);
      p_threshold = config_.r_stable * p_min_top;
      for (size_t i = 0; i < ranked.size(); ++i) {
        if (i < n_freeze ||
            monitor_->LatestServerWatts(ranked[i]) > p_threshold) {
          pool.insert(ranked[i]);
        }
      }
    } else {
      for (size_t i = 0; i < n_freeze; ++i) {
        pool.insert(ranked[i]);
      }
      pool.insert(frozen_set.begin(), frozen_set.end());
    }
    pool_size = static_cast<uint32_t>(pool.size());

    // Unfreeze servers that dropped out of the pool (lines 11-12). A lost
    // unfreeze RPC (after the scheduler's bounded retries) leaves the server
    // frozen — it stays in the cached set so bookkeeping matches the
    // scheduler's flags, and the next tick retries naturally.
    for (auto it = frozen_set.begin(); it != frozen_set.end();) {
      if (!pool.contains(*it)) {
        if (RpcUnfreeze(*it)) {
          ++unfreeze_ops_;
          it = frozen_set.erase(it);
        } else {
          ++it;
        }
      } else {
        ++it;
      }
    }

    if (frozen_set.size() > n_freeze) {
      // Too many frozen: release arbitrary extras (lines 13-14).
      size_t excess = frozen_set.size() - n_freeze;
      for (auto it = frozen_set.begin();
           it != frozen_set.end() && excess > 0;) {
        if (RpcUnfreeze(*it)) {
          ++unfreeze_ops_;
          it = frozen_set.erase(it);
          --excess;
        } else {
          ++it;
        }
      }
    } else if (frozen_set.size() < n_freeze) {
      // Too few: freeze the highest-power pool members not yet frozen
      // (lines 15-16). `ranked` is already in descending power order. A
      // lost freeze RPC skips to the next-ranked candidate, so the target
      // count is usually still met from the hysteresis pool; if the pool
      // runs out the tick ends under target and the journal records the
      // give-ups — the next tick re-solves from fresh power and retries.
      for (ServerId id : ranked) {
        if (frozen_set.size() >= n_freeze) {
          break;
        }
        if (pool.contains(id) && !frozen_set.contains(id)) {
          if (RpcFreeze(id)) {
            ++freeze_ops_;
            frozen_set.insert(id);
          }
        }
      }
    }
  }

  const auto freeze_delta =
      static_cast<uint32_t>(freeze_ops_ - freeze_ops_before);
  const auto unfreeze_delta =
      static_cast<uint32_t>(unfreeze_ops_ - unfreeze_ops_before);
  const bool violation = p > 1.0;
  const bool cap_engaged = u >= config_.max_freeze_ratio;

  // Journal the decision for audit. The journal only *observes* (it never
  // feeds back into control or RNG state), so simulation results are
  // unchanged whether it is on or off.
  if (journal_on) {
    obs::DecisionRecord record;
    record.time = now;
    record.domain = domain.group;
    record.observed_watts = power;
    record.budget_watts = domain.budget_watts;
    record.normalized_power = p;
    record.et = et;
    record.violation = violation;
    // One-step model bound: next-minute power may rise by at most E_t and
    // the freeze drains f(u) (Eq. 13's balance). The next tick backfills
    // what actually happened. A blackout skip predicts "hold": no model
    // claim is made from a dark feed.
    record.predicted_next = mode == obs::DegradedMode::kBlackoutSkip
                                ? p
                                : p + et_eff - config_.effect.Effect(u);
    record.u = u;
    record.cap_engaged = cap_engaged;
    record.n_freeze = static_cast<uint32_t>(n_freeze);
    record.n_servers = static_cast<uint32_t>(n);
    record.freeze_ops = freeze_delta;
    record.unfreeze_ops = unfreeze_delta;
    record.pool_size = pool_size;
    record.p_threshold = p_threshold;
    record.degraded = mode;
    record.reading_age_us = reading.valid() ? age.micros() : -1;
    record.et_effective = et_eff;
    record.rpc_failures = tick_rpc_failures_;
    record.rpc_giveups = tick_rpc_giveups_;
    const uint64_t seq = journal_.Append(std::move(record));
    // Degraded ticks never arm a prediction: their base value is stale (or
    // a hold), so resolving them would corrupt the drift gauges.
    if (mode == obs::DegradedMode::kNone) {
      pending_realized_[domain_index] = seq;
    }
  }

  // Timeline events come AFTER the journal append so a violation-triggered
  // postmortem (the anomaly sink fires synchronously inside the recorder)
  // tails a journal that already ends with the triggering decision.
  if (violation) {
    AMPERE_TIMELINE(now, obs::TimelineEventType::kCapacityViolation, p,
                    domain.budget_watts, domain_index);
  }
  AMPERE_TIMELINE(now, obs::TimelineEventType::kTickEnd, et_eff, u, n_freeze);

  // Degradation bookkeeping (run totals + faults.* registry counters).
  if (mode != obs::DegradedMode::kNone) {
    ++degraded_ticks_;
    AMPERE_COUNTER_ADD("faults.degraded_ticks", 1);
    if (mode == obs::DegradedMode::kBlackoutSkip) {
      ++blackout_skips_;
      AMPERE_COUNTER_ADD("faults.blackout_skips", 1);
    } else {
      ++stale_fallbacks_;
      AMPERE_COUNTER_ADD("faults.stale_fallbacks", 1);
    }
  }

  // Registry telemetry (compiled out under AMPERE_OBS_DISABLED).
  AMPERE_COUNTER_ADD("controller.domain_ticks", 1);
  if (violation) AMPERE_COUNTER_ADD("controller.violations", 1);
  if (cap_engaged) AMPERE_COUNTER_ADD("controller.cap_engaged", 1);
  if (freeze_delta > 0) {
    AMPERE_COUNTER_ADD("controller.freeze_ops", freeze_delta);
  }
  if (unfreeze_delta > 0) {
    AMPERE_COUNTER_ADD("controller.unfreeze_ops", unfreeze_delta);
  }
  if (journal_on && obs::Enabled()) {
    // Journal-fed model-drift gauges over the last drift_window (one hour
    // at minute cadence) resolved records of this domain.
    if (auto rmse =
            journal_.RollingModelRmse(config_.drift_window, domain.group)) {
      obs::GaugeSet("controller.model_rmse." + domain.group, *rmse);
    }
    if (auto util = journal_.RollingEtMarginUtilization(config_.drift_window,
                                                        domain.group)) {
      obs::GaugeSet("controller.et_margin_util." + domain.group, *util);
    }
  }

  AMPERE_LOG(kDebug) << "domain " << domain.group << " p=" << p
                     << " et=" << et << " u=" << u
                     << " frozen=" << frozen_set.size() << "/" << n;
}

void AmpereController::UnfreezeAll(size_t domain_index) {
  std::unordered_set<ServerId>& set = frozen_[domain_index];
  for (auto it = set.begin(); it != set.end();) {
    if (RpcUnfreeze(*it)) {
      ++unfreeze_ops_;
      it = set.erase(it);
    } else {
      // Lost after retries: the server stays frozen in the scheduler, so it
      // stays in the cached set too; the next tick retries.
      ++it;
    }
  }
}

bool AmpereController::RpcFreeze(ServerId id) {
  const RpcResult result = scheduler_->TryFreeze(id);
  AccountRpc(result);
  AMPERE_TIMELINE(tick_now_, obs::TimelineEventType::kFreezeRpc,
                  result.attempts, result.ok ? 1.0 : 0.0,
                  static_cast<uint64_t>(id.value()));
  return result.ok;
}

bool AmpereController::RpcUnfreeze(ServerId id) {
  const RpcResult result = scheduler_->TryUnfreeze(id);
  AccountRpc(result);
  AMPERE_TIMELINE(tick_now_, obs::TimelineEventType::kUnfreezeRpc,
                  result.attempts, result.ok ? 1.0 : 0.0,
                  static_cast<uint64_t>(id.value()));
  return result.ok;
}

void AmpereController::AccountRpc(const RpcResult& result) {
  rpc_latency_total_ += result.latency;
  const auto failed_attempts =
      static_cast<uint32_t>(result.attempts - (result.ok ? 1 : 0));
  if (failed_attempts > 0) {
    tick_rpc_failures_ += failed_attempts;
    rpc_failures_ += failed_attempts;
    AMPERE_COUNTER_ADD("faults.controller_rpc_failures", failed_attempts);
  }
  if (!result.ok) {
    ++tick_rpc_giveups_;
    ++rpc_giveups_;
    AMPERE_COUNTER_ADD("faults.controller_rpc_giveups", 1);
  }
}

void AmpereController::RebuildStateFromScheduler() {
  for (size_t d = 0; d < domains_.size(); ++d) {
    frozen_[d].clear();
    for (ServerId id : domains_[d].servers) {
      if (scheduler_->IsFrozen(id)) {
        frozen_[d].insert(id);
      }
    }
  }
}

double AmpereController::freeze_ratio(size_t domain_index) const {
  const ControlDomain& domain = domains_[domain_index];
  if (domain.servers.empty()) {
    return 0.0;
  }
  return static_cast<double>(frozen_[domain_index].size()) /
         static_cast<double>(domain.servers.size());
}

}  // namespace ampere
