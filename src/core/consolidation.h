// Server-consolidation baseline (§5.1 of the paper's related work).
//
// The alternative school of power management transitions idle servers into
// low-power sleep states when fleet utilization is low (PowerNap; Bradley
// et al.; Xu et al.) and wakes them as demand returns. It saves energy but
// "turning off servers is a complex process ... very hard to guarantee the
// SLA requirements": waking takes tens of seconds, so demand spikes queue
// behind cold servers. This controller implements that policy so the
// baseline_consolidation bench can quantify the trade-off Ampere avoids
// (freezing never touches running or arriving work when capacity exists).

#ifndef SRC_CORE_CONSOLIDATION_H_
#define SRC_CORE_CONSOLIDATION_H_

#include <cstdint>
#include <memory>

#include "src/cluster/datacenter.h"
#include "src/sched/scheduler.h"

namespace ampere {

struct ConsolidationConfig {
  // Sleep idle servers while awake-fleet CPU utilization is below this.
  double sleep_below_utilization = 0.40;
  // Wake servers when utilization exceeds this or jobs are queued.
  double wake_above_utilization = 0.60;
  // Never sleep below this many awake servers.
  size_t min_awake = 4;
  // Servers transitioned per tick (rate limit, as production would).
  size_t step = 2;
};

class ConsolidationController {
 public:
  // `dc` and `scheduler` must outlive the controller.
  ConsolidationController(DataCenter* dc, Scheduler* scheduler,
                          const ConsolidationConfig& config);

  void Start(Simulation* sim, SimTime first_tick,
             SimTime interval = SimTime::Minutes(1));

  // One decision pass (public for tests).
  void Tick();

  // CPU utilization of the awake portion of the fleet.
  double AwakeUtilization() const;
  size_t ServersAsleep() const;
  uint64_t sleeps_initiated() const { return sleeps_; }
  uint64_t wakes_initiated() const { return wakes_; }

 private:
  DataCenter* dc_;
  Scheduler* scheduler_;
  ConsolidationConfig config_;
  uint64_t sleeps_ = 0;
  uint64_t wakes_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace ampere

#endif  // SRC_CORE_CONSOLIDATION_H_
