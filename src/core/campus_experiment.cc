#include "src/core/campus_experiment.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "src/common/check.h"
#include "src/common/log.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/obs/trace_export.h"

namespace ampere {

CampusBudgetAllocator::CampusBudgetAllocator(
    double campus_total_watts, const CampusAllocatorConfig& config)
    : campus_total_watts_(campus_total_watts), config_(config),
      journal_(config.journal_capacity > 0 ? config.journal_capacity : 1) {
  AMPERE_CHECK(campus_total_watts > 0.0);
}

std::vector<double> CampusBudgetAllocator::Replan(
    SimTime now, std::span<const CampusDcObservation> dcs,
    double total_scale) {
  AMPERE_CHECK(total_scale > 0.0) << "campus budget scale must stay positive";
  const double scaled_total = campus_total_watts_ * total_scale;
  std::vector<double> shares =
      AllocateCampusBudgets(scaled_total, dcs, config_);
  while (domain_names_.size() < dcs.size()) {
    domain_names_.push_back("campus/dc" +
                            std::to_string(domain_names_.size()));
  }
  for (size_t i = 0; i < dcs.size(); ++i) {
    // One audit record per DC per re-plan, reusing the controller's record
    // schema: the "decision" is the DC's new budget, u is its share
    // fraction of the campus cap, E_t is the allocator's drift margin.
    obs::DecisionRecord rec;
    rec.time = now;
    rec.domain = domain_names_[i];
    rec.observed_watts = dcs[i].observed_watts;
    rec.budget_watts = shares[i];
    rec.normalized_power =
        shares[i] > 0.0 ? dcs[i].observed_watts / shares[i] : 0.0;
    rec.et = config_.et_margin;
    rec.violation = rec.normalized_power > 1.0;
    rec.predicted_next = shares[i];
    rec.u = shares[i] / scaled_total;
    rec.n_servers = static_cast<uint32_t>(dcs.size());
    journal_.Append(rec);
  }
  ++replans_;
  return shares;
}

CampusResult RunCampusToResult(const ExperimentConfig& config) {
  CampusExperiment experiment(config);
  return experiment.Run();
}

std::string CampusExperiment::DcPrefix(DataCenterId id) {
  return "campus/dc" + std::to_string(id.value()) + "/";
}

CampusConfig CampusExperiment::MakeCampusConfig(
    const ExperimentConfig& config) {
  CampusConfig campus;
  campus.num_datacenters = config.campus.num_datacenters;
  campus.datacenter = config.topology;
  campus.dc_contract_watts = config.campus.dc_contract_watts;
  campus.campus_contract_watts = config.campus.campus_contract_watts;
  return campus;
}

CampusExperiment::CampusExperiment(const ExperimentConfig& config)
    : config_(config), rng_(config.seed), sim_(),
      campus_(MakeCampusConfig(config), &sim_) {
  AMPERE_CHECK(config_.campus.enabled)
      << "CampusExperiment requires config.campus.enabled";
  AMPERE_CHECK(config_.enable_ampere)
      << "campus federation needs the per-DC controllers";
  AMPERE_CHECK(!config_.faults.any())
      << "fault injection is not wired into campus runs yet";
  AMPERE_CHECK(!config_.trace.active())
      << "workload trace record/replay is single-DC only";

  if (config_.jobs >= 2) {
    // One shared pool for every DC's batch passes. Only one sample pass or
    // resummation runs at a time (the simulation is single-threaded), so
    // sharing is safe and keeps the worker count at jobs-1 total.
    pool_ = std::make_unique<ThreadPool>(config_.jobs - 1);
    campus_.SetThreadPool(pool_.get());
  }
  if (config_.storage.enabled()) {
    // Shared cold tier under the campus-wide db (per-DC prefixes keep the
    // series distinct, so one store serves every DC). Same wiring as
    // ControlledExperiment: storage plumbing only, results unchanged.
    ColdStoreConfig cold;
    cold.dir = config_.storage.store_dir;
    cold.segment_samples =
        config_.storage.segment_samples > 0
            ? config_.storage.segment_samples
            : std::max<size_t>(16384, config_.storage.hot_budget_samples);
    auto opened = ColdStore::Create(cold);
    AMPERE_CHECK(opened.status.ok())
        << "cannot create cold store: " << opened.status.message;
    cold_store_ = std::move(opened.store);
    db_.AttachColdStore(cold_store_.get(),
                        config_.storage.hot_budget_samples);
  }

  dcs_.reserve(static_cast<size_t>(campus_.num_datacenters()));
  for (int d = 0; d < campus_.num_datacenters(); ++d) {
    BuildDc(DataCenterId(d));
  }

  // The campus experiment cap is the sum of the initial rO-scaled per-DC
  // experiment budgets — the same total a static federation would carve up.
  double campus_cap = 0.0;
  for (const auto& dc : dcs_) {
    campus_cap += dc->experiment_budget_watts;
  }
  allocator_ = std::make_unique<CampusBudgetAllocator>(
      campus_cap, config_.campus.allocator);

  if (config_.obs.enabled()) {
    recorder_ =
        std::make_unique<obs::FlightRecorder>(config_.obs.recorder_capacity);
    recorder_->SetAnomalyPolicy(config_.obs.anomaly);
    if (!config_.obs.postmortem_dir.empty()) {
      recorder_->SetAnomalySink(
          [this](const obs::TimelineEvent& trigger) {
            WritePostmortem(trigger);
          });
    }
  }
}

void CampusExperiment::BuildDc(DataCenterId id) {
  const size_t k = id.index();
  DataCenter& dc = campus_.dc(id);
  auto state = std::make_unique<DcState>();
  state->id = id;

  // Distinct forked streams per DC and per role, disjoint from the stream
  // ids ControlledExperiment uses (1..3, 77), so a campus run's randomness
  // is stable under adding components.
  state->scheduler = std::make_unique<Scheduler>(
      &dc, config_.scheduler, rng_.Fork(100 + static_cast<uint64_t>(k)));

  PowerMonitorConfig monitor_config = config_.monitor;
  monitor_config.series_prefix = DcPrefix(id);
  state->monitor = std::make_unique<PowerMonitor>(
      &dc, &db_, monitor_config, rng_.Fork(300 + static_cast<uint64_t>(k)));
  if (pool_ != nullptr) {
    state->monitor->SetThreadPool(pool_.get());
  }

  // §4.1.2 parity split within each DC, exactly as ControlledExperiment.
  for (int32_t s = 0; s < dc.num_servers(); ++s) {
    ServerId sid(s);
    if (dc.server(sid).reserved()) {
      continue;
    }
    if (s % 2 == 0) {
      state->experiment_servers.push_back(sid);
    } else {
      state->control_servers.push_back(sid);
    }
  }
  AMPERE_CHECK(!state->experiment_servers.empty() &&
               !state->control_servers.empty());
  state->monitor->RegisterGroup(ControlledExperiment::kExperimentGroup,
                                state->experiment_servers);
  state->monitor->RegisterGroup(ControlledExperiment::kControlGroup,
                                state->control_servers);

  const double rated = dc.power_model().rated_watts();
  const double scale = 1.0 + config_.over_provision_ratio;
  state->experiment_rated_watts =
      static_cast<double>(state->experiment_servers.size()) * rated;
  const double ctl_rated =
      static_cast<double>(state->control_servers.size()) * rated;
  state->experiment_budget_watts = config_.scale_experiment_budget
                                       ? state->experiment_rated_watts / scale
                                       : state->experiment_rated_watts;
  state->control_budget_watts =
      config_.scale_control_budget ? ctl_rated / scale : ctl_rated;

  // Per-DC workload: same product mix, per-DC intensity. dc_target_power
  // gives each DC its own normalized-power operating point (last value
  // repeats); empty keeps the caller's arrival rate everywhere.
  BatchWorkloadParams workload = config_.workload;
  if (!config_.campus.dc_target_power.empty()) {
    const size_t i =
        std::min(k, config_.campus.dc_target_power.size() - 1);
    workload.arrivals.base_rate_per_min = ArrivalRateForNormalizedPower(
        config_.topology, config_.workload,
        config_.campus.dc_target_power[i], config_.over_provision_ratio);
  }
  state->workload = std::make_unique<BatchWorkload>(
      workload, &sim_, state->scheduler.get(), &ids_,
      rng_.Fork(200 + static_cast<uint64_t>(k)));

  state->controller = std::make_unique<AmpereController>(
      state->scheduler.get(), state->monitor.get(), config_.controller);

  // Per-DC observability scope: metrics land under "dcK/..." and timeline
  // events carry the DC's domain id, so one shared registry/recorder keeps
  // the federated DCs' signals separate. Observation-only.
  const obs::DomainId obs_dom =
      obs::InternDomain("dc" + std::to_string(k) + "/");
  dc.SetObsDomain(obs_dom);
  state->scheduler->SetObsDomain(obs_dom);
  state->monitor->SetObsDomain(obs_dom);
  state->controller->SetObsDomain(obs_dom);

  ControlDomain domain;
  domain.group = ControlledExperiment::kExperimentGroup;
  domain.servers = state->experiment_servers;
  domain.budget_watts = state->experiment_budget_watts;
  state->controller->AddDomain(std::move(domain));

  DcState* raw = state.get();
  state->scheduler->SetPlacementListener(
      [this, raw](const JobSpec&, ServerId server) {
        if (!counting_) {
          return;
        }
        if ((server.value() % 2) == 0) {
          ++raw->window_thru_experiment;
          ++raw->minute_thru_experiment;
        } else {
          ++raw->window_thru_control;
          ++raw->minute_thru_control;
        }
      });

  state->experiment_report.name =
      DcPrefix(id) + ControlledExperiment::kExperimentGroup;
  state->experiment_report.budget_watts = state->experiment_budget_watts;
  state->control_report.name =
      DcPrefix(id) + ControlledExperiment::kControlGroup;
  state->control_report.budget_watts = state->control_budget_watts;

  dcs_.push_back(std::move(state));
}

void CampusExperiment::InstallMetricsRecorder(DcState& dc, SimTime from,
                                              SimTime to) {
  // Same cadence and offset as ControlledExperiment: 2 s after the minute's
  // monitor sample and the controller's +1 s tick. Normalization tracks the
  // *current* allocator-assigned budget, so a re-plan is visible in the
  // normalized series the very next minute.
  DcState* state = &dc;
  sim_.SchedulePeriodic(
      from + SimTime::Seconds(2), SimTime::Minutes(1),
      [this, state, to](SimTime t) {
        if (t >= to) {
          return;
        }
        const double exp_watts = state->monitor->LatestGroupWatts(
            ControlledExperiment::kExperimentGroup);
        const double ctl_watts = state->monitor->LatestGroupWatts(
            ControlledExperiment::kControlGroup);
        const double exp_budget = state->controller->domain_budget(0);

        MinutePoint exp_point;
        exp_point.time = t;
        exp_point.power_watts = exp_watts;
        exp_point.normalized_power = exp_watts / exp_budget;
        exp_point.freeze_ratio = state->controller->freeze_ratio(0);
        exp_point.violation = exp_point.normalized_power > 1.0;
        exp_point.placements =
            static_cast<uint32_t>(state->minute_thru_experiment);
        state->experiment_report.minutes.push_back(exp_point);

        MinutePoint ctl_point;
        ctl_point.time = t;
        ctl_point.power_watts = ctl_watts;
        ctl_point.normalized_power = ctl_watts / state->control_budget_watts;
        ctl_point.freeze_ratio = 0.0;
        ctl_point.violation = ctl_point.normalized_power > 1.0;
        ctl_point.placements =
            static_cast<uint32_t>(state->minute_thru_control);
        state->control_report.minutes.push_back(ctl_point);

        state->minute_thru_experiment = 0;
        state->minute_thru_control = 0;
      });
}

void CampusExperiment::ReplanBudgets(SimTime now) {
  std::vector<CampusDcObservation> observations;
  observations.reserve(dcs_.size());
  for (const auto& dc : dcs_) {
    CampusDcObservation obs;
    obs.observed_watts = dc->monitor->LatestGroupWatts(
        ControlledExperiment::kExperimentGroup);
    obs.budget_watts = dc->controller->domain_budget(0);
    obs.contract_watts = dc->experiment_rated_watts;
    observations.push_back(obs);
  }
  const std::vector<double> shares =
      allocator_->Replan(now, observations, campus_budget_scale_);
  last_planned_scale_ = campus_budget_scale_;
  for (size_t k = 0; k < dcs_.size(); ++k) {
    dcs_[k]->controller->SetDomainBudget(0, shares[k]);
    AMPERE_TIMELINE(now, obs::TimelineEventType::kCampusReplan, shares[k],
                    observations[k].observed_watts,
                    static_cast<uint64_t>(k));
  }
}

void CampusExperiment::SpilloverPass(SimTime now) {
  const size_t threshold = config_.campus.spillover_queue_threshold;
  for (auto& source : dcs_) {
    if (source->scheduler->queue_length() <= threshold ||
        source->controller->freeze_ratio(0) <= 0.0) {
      continue;
    }
    // Starved source: its queue is backed up while its controller holds
    // capacity frozen. Pick the sibling with the most observed headroom
    // against its *current* budget (ties break toward the lower DC id).
    DcState* target = nullptr;
    double best_headroom = 0.0;
    for (auto& candidate : dcs_) {
      if (candidate.get() == source.get() ||
          candidate->scheduler->queue_length() > threshold) {
        continue;
      }
      const double headroom =
          candidate->controller->domain_budget(0) -
          candidate->monitor->LatestGroupWatts(
              ControlledExperiment::kExperimentGroup);
      if (headroom > best_headroom) {
        best_headroom = headroom;
        target = candidate.get();
      }
    }
    if (target == nullptr) {
      continue;
    }
    const std::vector<JobSpec> moved = source->scheduler->TakePending(
        config_.campus.spillover_max_jobs_per_pass);
    for (const JobSpec& job : moved) {
      target->scheduler->Submit(job);
    }
    target->jobs_spilled_in += moved.size();
    spillover_jobs_ += moved.size();
    if (!moved.empty()) {
      AMPERE_TIMELINE(now, obs::TimelineEventType::kSpillover,
                      static_cast<double>(moved.size()), best_headroom,
                      (static_cast<uint64_t>(source->id.value()) << 32) |
                          static_cast<uint64_t>(target->id.value()));
    }
  }
}

CampusResult CampusExperiment::Run() {
  AMPERE_SPAN("campus.run");
  // Install the flight recorder (if configured) for the whole federated
  // loop. Recording is passive — nothing downstream reads the recorder
  // during the run — so results are bit-identical with or without it.
  obs::ScopedFlightRecorder scoped_recorder(recorder_.get());
  for (const auto& dc : dcs_) {
    dc->workload->Start(SimTime());
  }
  // Monitors fire at the same instants; the event queue's FIFO seq order
  // makes DC 0 sample first every minute, deterministically.
  for (const auto& dc : dcs_) {
    dc->monitor->Start(SimTime::Minutes(1));
  }

  const SimTime measure_start = config_.warmup;
  const SimTime end = config_.warmup + config_.duration;

  for (const auto& dc : dcs_) {
    dc->controller->Start(&sim_, measure_start + SimTime::Seconds(1));
  }
  for (const auto& dc : dcs_) {
    InstallMetricsRecorder(*dc, measure_start, end);
  }
  if (config_.campus.enable_spillover) {
    sim_.SchedulePeriodic(measure_start + SimTime::Seconds(4),
                          SimTime::Minutes(1), [this, end](SimTime t) {
                            if (t >= end) {
                              return;
                            }
                            SpilloverPass(t);
                          });
  }
  if (!config_.budget_schedule.IsConstant()) {
    // Campus P(t): refresh the scale each minute between spillover (+4 s)
    // and the re-plan slot (+5 s). A scale change forces an extra re-plan
    // immediately rather than waiting out the replan_interval, so
    // mid-window curtailment reaches every DC controller within a minute.
    sim_.SchedulePeriodic(
        measure_start + SimTime::Millis(4500), SimTime::Minutes(1),
        [this, measure_start, end](SimTime t) {
          if (t >= end) {
            return;
          }
          campus_budget_scale_ =
              config_.budget_schedule.ScaleAt(t - measure_start);
          if (campus_budget_scale_ != last_planned_scale_) {
            ReplanBudgets(t);
          }
        });
  }
  sim_.SchedulePeriodic(measure_start + SimTime::Seconds(5),
                        config_.campus.allocator.replan_interval,
                        [this, end](SimTime t) {
                          if (t >= end) {
                            return;
                          }
                          ReplanBudgets(t);
                        });
  sim_.ScheduleAt(measure_start, [this] { counting_ = true; });

  sim_.RunUntil(end);

  CampusResult result;
  result.dcs.reserve(dcs_.size());
  uint64_t thru_experiment = 0;
  uint64_t thru_control = 0;
  for (const auto& dc : dcs_) {
    dc->experiment_report.throughput_jobs = dc->window_thru_experiment;
    dc->control_report.throughput_jobs = dc->window_thru_control;
    // Report against the final allocator-assigned budget; minute points
    // already normalized against the budget in force at their minute.
    dc->experiment_report.budget_watts = dc->controller->domain_budget(0);
    dc->experiment_report.Finalize();
    dc->control_report.Finalize();

    CampusDcResult out;
    out.experiment = dc->experiment_report;
    out.control = dc->control_report;
    out.throughput_ratio =
        dc->window_thru_control > 0
            ? static_cast<double>(dc->window_thru_experiment) /
                  static_cast<double>(dc->window_thru_control)
            : 0.0;
    out.gain_tpw =
        GainInTpw(out.throughput_ratio, config_.over_provision_ratio);
    out.jobs_submitted = dc->scheduler->jobs_submitted();
    out.jobs_completed = dc->scheduler->jobs_completed();
    out.final_queue_length = dc->scheduler->queue_length();
    out.jobs_spilled_out = dc->scheduler->jobs_spilled_out();
    out.jobs_spilled_in = dc->jobs_spilled_in;
    out.final_budget_watts = dc->controller->domain_budget(0);
    out.breaker_tripped = campus_.dc(dc->id).AnyBreakerTripped();
    out.journal = dc->controller->journal().Summarize();
    result.dcs.push_back(std::move(out));

    thru_experiment += dc->window_thru_experiment;
    thru_control += dc->window_thru_control;
    result.jobs_submitted += dc->scheduler->jobs_submitted();
    result.jobs_completed += dc->scheduler->jobs_completed();
  }
  result.throughput_ratio =
      thru_control > 0 ? static_cast<double>(thru_experiment) /
                             static_cast<double>(thru_control)
                       : 0.0;
  result.gain_tpw =
      GainInTpw(result.throughput_ratio, config_.over_provision_ratio);
  result.spillover_jobs = spillover_jobs_;
  result.replans = allocator_->replans();
  result.breaker_tripped = campus_.AnyBreakerTripped();
  result.allocator_journal = allocator_->journal().Summarize();

  if (recorder_ != nullptr) {
    result.timeline_events = recorder_->total_appended();
    if (!config_.obs.trace_path.empty()) {
      const std::string label =
          config_.obs.run_label.empty() ? "campus" : config_.obs.run_label;
      if (obs::WriteChromeTraceFile(*recorder_, config_.obs.trace_path,
                                    label)) {
        result.artifacts.push_back(config_.obs.trace_path);
      } else {
        AMPERE_LOG(kWarning) << "failed to write trace artifact "
                             << config_.obs.trace_path;
      }
    }
    result.artifacts.insert(result.artifacts.end(), artifacts_.begin(),
                            artifacts_.end());
  }
  if (cold_store_ != nullptr) {
    const StoreStatus flushed = cold_store_->Flush();
    AMPERE_CHECK(flushed.ok())
        << "cold store flush failed: " << flushed.message;
    result.cold_samples_spilled = db_.samples_spilled();
    result.cold_segments = cold_store_->total_segments();
    result.artifacts.push_back(cold_store_->ManifestPath());
    AMPERE_LOG(kInfo) << "cold store: spilled "
                      << result.cold_samples_spilled << " samples into "
                      << result.cold_segments << " segments under "
                      << cold_store_->dir();
  }
  return result;
}

void CampusExperiment::WritePostmortem(const obs::TimelineEvent& trigger) {
  const std::string label =
      config_.obs.run_label.empty() ? "campus" : config_.obs.run_label;
  std::string safe_label = label;
  for (char& c : safe_label) {
    if (c == '/' || c == '\\' || c == ' ') c = '-';
  }
  std::error_code ec;
  std::filesystem::create_directories(config_.obs.postmortem_dir, ec);
  const std::string path = config_.obs.postmortem_dir + "/postmortem_" +
                           safe_label + "_" +
                           std::to_string(recorder_->anomalies_fired()) +
                           ".json";
  const std::string json = BuildPostmortemJson(
      trigger, *recorder_, obs::CurrentMetrics()->Snapshot(),
      allocator_ != nullptr ? &allocator_->journal() : nullptr,
      config_.obs.postmortem, label);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    AMPERE_LOG(kWarning) << "failed to open postmortem artifact " << path;
    return;
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (ok) {
    artifacts_.push_back(path);
    AMPERE_LOG(kInfo) << "campus postmortem ("
                      << obs::TimelineEventTypeName(trigger.type) << " @ "
                      << trigger.time.minutes() << " min) -> " << path;
  }
}

}  // namespace ampere
