// Campus-federation experiment: N controlled experiments under one contract.
//
// A CampusExperiment runs the §4.1.2 controlled-experiment methodology in
// every data center of a Campus simultaneously — one scheduler, monitor,
// workload generator, and Ampere controller per DC, all bound to ONE shared
// Simulation and ONE shared TimeSeriesDb (per-DC series prefixes keep the
// namespaces disjoint) — and adds the two campus-level behaviors:
//
//   1. Hierarchical budget allocation. Every re-plan interval the
//      CampusBudgetAllocator reads each DC's observed experiment-group
//      power and re-divides the campus experiment cap across the per-DC
//      controllers (AllocateCampusBudgets in src/control), journaling one
//      DecisionRecord per DC per re-plan under domain "campus/dcK". The
//      per-DC controllers are unchanged in their inner loop; only the PM
//      they normalize against moves.
//   2. Cross-DC batch spillover (policy-flagged, default off). When a DC's
//      frozen capacity starves its queue, unpinned pending jobs migrate to
//      the sibling DC with the most observed headroom via
//      Scheduler::TakePending + Submit.
//
// Determinism contract: everything campus-level runs on the simulation
// thread at fixed event offsets (monitor :00, controllers +1 s, metrics
// +2 s, spillover +4 s, re-plan +5 s; ties broken by DC order via the event
// queue's FIFO seq). Parallelism (jobs >= 2) only shards the per-monitor
// sample passes and resummations, which are byte-identical by the
// counter-rng contract — so a campus run is a pure function of its config,
// bit-identical at any job count.

#ifndef SRC_CORE_CAMPUS_EXPERIMENT_H_
#define SRC_CORE_CAMPUS_EXPERIMENT_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/cluster/campus.h"
#include "src/common/rng.h"
#include "src/control/campus_allocator.h"
#include "src/core/experiment.h"
#include "src/obs/journal.h"

namespace ampere {

// The campus-level control daemon: owns the re-plan math's inputs/outputs
// and the decision audit log. Pure apart from the journal — Replan returns
// AllocateCampusBudgets on its observations and records one DecisionRecord
// per DC (domain "campus/dcK": observed vs the new budget, u = the DC's
// share fraction of the campus cap).
class CampusBudgetAllocator {
 public:
  CampusBudgetAllocator(double campus_total_watts,
                        const CampusAllocatorConfig& config);

  // `total_scale` applies a time-varying campus cap P(t): the allocator
  // divides campus_total_watts * total_scale instead of the static cap.
  std::vector<double> Replan(SimTime now,
                             std::span<const CampusDcObservation> dcs,
                             double total_scale = 1.0);

  double campus_total_watts() const { return campus_total_watts_; }
  uint64_t replans() const { return replans_; }
  const obs::DecisionJournal& journal() const { return journal_; }

 private:
  double campus_total_watts_;
  CampusAllocatorConfig config_;
  obs::DecisionJournal journal_;
  std::vector<std::string> domain_names_;  // "campus/dcK", grown on demand.
  uint64_t replans_ = 0;
};

// Per-DC slice of a campus run: the usual two-group report plus the
// federation bookkeeping.
struct CampusDcResult {
  GroupReport experiment;
  GroupReport control;
  double throughput_ratio = 0.0;
  double gain_tpw = 0.0;
  uint64_t jobs_submitted = 0;
  uint64_t jobs_completed = 0;
  size_t final_queue_length = 0;
  uint64_t jobs_spilled_out = 0;  // Taken from this DC's queue.
  uint64_t jobs_spilled_in = 0;   // Re-submitted into this DC.
  double final_budget_watts = 0.0;  // Experiment budget after the last plan.
  bool breaker_tripped = false;
  obs::JournalSummary journal;  // This DC's controller journal.
};

struct CampusResult {
  std::vector<CampusDcResult> dcs;
  // Campus-level rT/G_TPW over the summed group throughputs.
  double throughput_ratio = 0.0;
  double gain_tpw = 0.0;
  uint64_t jobs_submitted = 0;
  uint64_t jobs_completed = 0;
  uint64_t spillover_jobs = 0;  // Total cross-DC migrations.
  uint64_t replans = 0;
  bool breaker_tripped = false;
  obs::JournalSummary allocator_journal;
  // Observability artifacts written during the run (trace first, then
  // postmortems in trigger order) and the flight-recorder event total.
  // Empty/zero unless config.obs enabled recording.
  std::vector<std::string> artifacts;
  uint64_t timeline_events = 0;
  // Cold-tier accounting (zero when config.storage is off); the manifest
  // path lands in `artifacts`.
  uint64_t cold_samples_spilled = 0;
  uint64_t cold_segments = 0;
};

// Pure entry point mirroring RunExperimentToResult: builds a fresh
// CampusExperiment from `config` (config.campus must be enabled) and runs
// the closed loop. Deterministic function of the config; safe to call
// concurrently with distinct configs.
CampusResult RunCampusToResult(const ExperimentConfig& config);

class CampusExperiment {
 public:
  explicit CampusExperiment(const ExperimentConfig& config);

  CampusResult Run();

  // Canonical per-DC series prefix: "campus/dcK/".
  static std::string DcPrefix(DataCenterId id);

  // --- Component access for benches and tests ---
  Simulation& sim() { return sim_; }
  Campus& campus() { return campus_; }
  TimeSeriesDb& db() { return db_; }
  CampusBudgetAllocator& allocator() { return *allocator_; }
  Scheduler& scheduler(DataCenterId id) { return *dcs_[id.index()]->scheduler; }
  PowerMonitor& monitor(DataCenterId id) { return *dcs_[id.index()]->monitor; }
  AmpereController& controller(DataCenterId id) {
    return *dcs_[id.index()]->controller;
  }
  const ExperimentConfig& config() const { return config_; }
  // Null unless config.obs requested recording.
  obs::FlightRecorder* flight_recorder() { return recorder_.get(); }

 private:
  // Everything one DC owns. Construction order within the struct follows
  // the borrow graph (scheduler borrows the DC, monitor borrows DC + db,
  // controller borrows scheduler + monitor).
  struct DcState {
    DataCenterId id;
    std::unique_ptr<Scheduler> scheduler;
    std::unique_ptr<PowerMonitor> monitor;
    std::unique_ptr<BatchWorkload> workload;
    std::unique_ptr<AmpereController> controller;
    std::vector<ServerId> experiment_servers;
    std::vector<ServerId> control_servers;
    double experiment_budget_watts = 0.0;  // Initial (pre-allocator) share.
    double control_budget_watts = 0.0;
    double experiment_rated_watts = 0.0;   // Allocator clamp ceiling.
    uint64_t jobs_spilled_in = 0;
    GroupReport experiment_report;
    GroupReport control_report;
    uint64_t window_thru_experiment = 0;
    uint64_t window_thru_control = 0;
    uint64_t minute_thru_experiment = 0;
    uint64_t minute_thru_control = 0;
  };

  static CampusConfig MakeCampusConfig(const ExperimentConfig& config);
  void BuildDc(DataCenterId id);
  void InstallMetricsRecorder(DcState& dc, SimTime from, SimTime to);
  void SpilloverPass(SimTime now);
  void ReplanBudgets(SimTime now);
  // Anomaly sink: dumps the recorder window + metrics + the allocator's
  // journal tail (the campus-level audit log) into config.obs.postmortem_dir.
  void WritePostmortem(const obs::TimelineEvent& trigger);

  ExperimentConfig config_;
  Rng rng_;
  // Shared worker pool for all DCs' batch passes; declared before the
  // components that borrow it so it is destroyed last.
  std::unique_ptr<ThreadPool> pool_;
  Simulation sim_;
  Campus campus_;
  // Cold tier (null unless config.storage.enabled()); declared before db_
  // because the shared db spills into it from its append paths.
  std::unique_ptr<ColdStore> cold_store_;
  TimeSeriesDb db_;
  JobIdAllocator ids_;  // Shared: JobIds are campus-unique.
  std::vector<std::unique_ptr<DcState>> dcs_;
  std::unique_ptr<CampusBudgetAllocator> allocator_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::vector<std::string> artifacts_;  // Postmortems, in trigger order.
  uint64_t spillover_jobs_ = 0;
  bool counting_ = false;
  // Budget-schedule state: the scale in force now and the scale the last
  // re-plan used. A minute-tick mismatch triggers an extra mid-window
  // re-plan so curtailment propagates within one minute.
  double campus_budget_scale_ = 1.0;
  double last_planned_scale_ = 1.0;
};

}  // namespace ampere

#endif  // SRC_CORE_CAMPUS_EXPERIMENT_H_
