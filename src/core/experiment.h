// Controlled-experiment harness reproducing the paper's evaluation
// methodology (§4.1.2).
//
// The servers of one production row are partitioned into two virtual groups
// by server-id parity (a uniformly random split), both fed by the same
// scheduler, so the groups statistically receive the same workload. The
// experiment group runs under Ampere's control with a power budget scaled
// down by 1/(1 + rO) — emulating over-provisioning by rO per Eq. (16) — and
// the control group runs uncontrolled. Any difference between the groups is
// attributable to the control actions.
//
// The harness also implements the Fig. 5 calibration procedure: holding the
// freezing ratio at exogenous levels in timed blocks and recording the
// power-change difference between the groups, which fits f(u).
//
// Thread-compatibility audit (for the parallel scenario harness): a
// ControlledExperiment owns every piece of mutable state it touches — the
// Simulation clock and event queue, the DataCenter, the TimeSeriesDb, the
// scheduler, the monitor, and all RNG streams (forked from config.seed; no
// static locals, no globals). Two instances on two threads share nothing;
// run instances concurrently via RunExperimentToResult.

#ifndef SRC_CORE_EXPERIMENT_H_
#define SRC_CORE_EXPERIMENT_H_

#include <memory>
#include <span>
#include <vector>

#include "src/cluster/datacenter.h"
#include "src/common/rng.h"
#include "src/control/budget_schedule.h"
#include "src/control/campus_allocator.h"
#include "src/core/controller.h"
#include "src/core/metrics.h"
#include "src/faults/fault_injector.h"
#include "src/faults/fault_plan.h"
#include "src/obs/flight_recorder.h"
#include "src/sched/scheduler.h"
#include "src/sim/simulation.h"
#include "src/telemetry/cold_store.h"
#include "src/telemetry/power_monitor.h"
#include "src/telemetry/timeseries_db.h"
#include "src/workload/batch_workload.h"
#include "src/workload/trace_format.h"

namespace ampere {

// Campus-federation section of ExperimentConfig (consumed by
// CampusExperiment / RunCampusToResult in core/campus_experiment.h).
// ControlledExperiment ignores it entirely, so single-DC configs are
// bit-identical to the pre-federation harness.
struct CampusSection {
  bool enabled = false;
  int num_datacenters = 4;
  // Per-DC contract ceilings; CampusConfig semantics (last value repeats,
  // empty / non-positive = rated provisioning).
  std::vector<double> dc_contract_watts;
  double campus_contract_watts = 0.0;  // 0 = sum of DC contracts.
  CampusAllocatorConfig allocator;
  // Per-DC workload intensity as target normalized power (the heterogeneity
  // that makes dynamic allocation worth anything). Last value repeats;
  // empty keeps ExperimentConfig::workload's arrival rate as-is for every
  // DC.
  std::vector<double> dc_target_power;
  // Cross-DC batch spillover (off by default: single-DC-equivalent
  // behavior). When a DC's queue exceeds the threshold while its controller
  // is freezing, up to max_jobs_per_pass unpinned jobs per minute move to
  // the sibling DC with the most observed headroom.
  bool enable_spillover = false;
  size_t spillover_queue_threshold = 32;
  size_t spillover_max_jobs_per_pass = 16;
};

// Flight-recorder / artifact section of ExperimentConfig. Everything here is
// observation-only: the recorder never schedules simulation events or feeds
// into control decisions, so simulation results are bit-identical with any
// combination of these settings (the perf-identity goldens pin this).
struct ObsSection {
  // Attach a flight recorder for the run. Implied by a non-empty trace_path
  // or postmortem_dir; set it alone to query the recorder programmatically.
  bool flight_recorder = false;
  size_t recorder_capacity = 16384;
  // Write the run's timeline as Chrome/Perfetto trace_event JSON here after
  // the run ("" = no trace artifact).
  std::string trace_path;
  // Write anomaly postmortem JSON artifacts into this directory ("" = no
  // postmortems). Created if missing.
  std::string postmortem_dir;
  // Label embedded in artifacts and postmortem file names (scenario name
  // under the harness). Empty = "run".
  std::string run_label;
  obs::AnomalyPolicy anomaly;
  obs::PostmortemConfig postmortem;

  bool enabled() const {
    return flight_recorder || !trace_path.empty() || !postmortem_dir.empty();
  }
};

// Workload-trace record/replay section (ampere.trace.v1; see
// src/workload/trace_format.h and docs/traces.md). Inactive by default —
// the synthetic BatchWorkload runs and nothing is recorded, bit-identical
// to the pre-trace harness. Single-DC only: CampusExperiment rejects an
// active section (per-DC traces are future work).
struct WorkloadTraceSection {
  // Replay: when replay_data is set (or replay_path names a readable
  // trace), a TraceArrivalProcess replaces the synthetic generator as the
  // arrival source. replay_data wins over replay_path.
  std::shared_ptr<const TraceData> replay_data;
  std::string replay_path;
  // Record: interpose a TraceRecorder between the arrival source and the
  // scheduler (works for synthetic AND replayed runs). The trace is
  // retrievable via ControlledExperiment::RecordedTrace(); a non-empty
  // record_path also writes it after the run and reports it as an artifact.
  bool record = false;
  std::string record_path;

  bool replay() const {
    return replay_data != nullptr || !replay_path.empty();
  }
  bool recording() const { return record || !record_path.empty(); }
  bool active() const { return replay() || recording(); }
};

// Persistent-telemetry section (cold tier; see src/telemetry/cold_store.h).
// Off by default — no store is created, TimeSeriesDb keeps everything hot,
// and every golden stays byte-identical. When enabled, the experiment owns a
// ColdStore in `store_dir`, attaches it to its TimeSeriesDb with the
// per-series hot budget, and seals + flushes the store after Run(); the
// manifest is reported as an artifact. Storage is observation-plumbing only:
// the control loop reads the monitor's caches, never the db history, so
// simulation results — and the stitched full-history bytes — are identical
// with the tier on or off.
struct StorageSection {
  std::string store_dir;  // "" = RAM-only (default).
  // Per-series hot-tier occupancy cap, in samples. The oldest half of a
  // series spills to the cold store when it fills.
  size_t hot_budget_samples = 4096;
  // Cold segments seal and roll at this many samples (0 = derived:
  // max(16384, hot_budget_samples)). Segment size does not bound RSS — the
  // writer releases written pages eagerly — so the derivation favors large
  // segments: fewer files, fewer seal cycles.
  size_t segment_samples = 0;

  bool enabled() const { return !store_dir.empty(); }
};

struct ExperimentConfig {
  uint64_t seed = 42;
  // Intra-run data-parallelism lanes for the batch passes (the sharded
  // telemetry sample pass and the periodic exact power resummation). 1 (the
  // default) runs everything on the simulation thread — the exact serial
  // code path, no pool constructed. jobs >= 2 attaches an instance-owned
  // pool with jobs-1 workers (the simulation thread is the extra lane).
  // Results are byte-identical at any value: per-reading noise is
  // counter-based, shard partitions are static, and all reductions/flushes
  // preserve the serial element order. This composes with the scenario
  // harness running whole experiments in parallel — inner pools are
  // per-instance and share nothing.
  int jobs = 1;
  TopologyConfig topology;       // Default: one 420-server row.
  BatchWorkloadParams workload;  // Callers set arrival rate for the scenario.
  SchedulerConfig scheduler;
  PowerMonitorConfig monitor;
  // rO: extra servers emulated per Eq. (16) by scaling budgets down.
  double over_provision_ratio = 0.25;
  bool scale_experiment_budget = true;
  // §4.2 scales both groups (to compare controlled vs. uncontrolled at the
  // same rO); §4.4 scales only the experiment group.
  bool scale_control_budget = true;
  bool enable_ampere = true;
  AmpereControllerConfig controller;
  SimTime warmup = SimTime::Hours(2);
  SimTime duration = SimTime::Hours(24);
  // Chaos profile: when any fault dimension is active, the experiment
  // pre-generates a FaultPlan over the whole run horizon (seeded by
  // faults.seed, independent of the workload seed) and attaches one
  // FaultInjector to the monitor and the scheduler. Default: no faults —
  // bit-identical to the fault-free experiment.
  faults::FaultPlanConfig faults;
  // Campus federation (multi-DC) section; see CampusSection above. Only
  // RunCampusToResult reads it.
  CampusSection campus;
  // Flight recorder / trace / postmortem artifacts; see ObsSection above.
  ObsSection obs;
  // Workload-trace record/replay; see WorkloadTraceSection above.
  WorkloadTraceSection trace;
  // Persistent telemetry cold tier; see StorageSection above.
  StorageSection storage;
  // Time-varying power budget P(t), evaluated on the measured clock (t = 0
  // at the end of warmup) and applied per minute as a scale on the
  // experiment domain's budget (and, in a campus run, on the allocator's
  // campus total). The default constant schedule adds no events — fixed-cap
  // runs stay bit-identical.
  BudgetSchedule budget_schedule;
};

struct ExperimentResult {
  GroupReport experiment;
  GroupReport control;
  double throughput_ratio = 0.0;  // rT = thruE / thruC.
  double gain_tpw = 0.0;          // Eq. (18).
  uint64_t jobs_submitted = 0;
  uint64_t jobs_completed = 0;
  size_t final_queue_length = 0;
  bool breaker_tripped = false;
  // Aggregate of the controller's DecisionJournal over the run (empty when
  // the controller is disabled or journaling is off). Since the journal
  // sees the same per-minute power the metrics recorder sees, its
  // "experiment"-domain row reproduces the GroupReport's Table-2 counts
  // (violations, u_mean, u_max) independently — the audit path and the
  // reporting path cross-check each other.
  obs::JournalSummary journal;
  // Fault adversity the run actually experienced (all zero without an
  // injector): raw injector event counts plus the controller's degraded-tick
  // totals. These report what *happened*, where ExperimentConfig::faults
  // describes what was possible.
  faults::FaultCounts fault_counts;
  uint64_t degraded_ticks = 0;
  uint64_t blackout_skips = 0;
  uint64_t stale_fallbacks = 0;
  uint64_t rpc_giveups = 0;
  // Artifact files this run wrote (trace export first, then postmortems in
  // trigger order). Empty unless ExperimentConfig::obs asked for them.
  std::vector<std::string> artifacts;
  uint64_t timeline_events = 0;  // Recorder total_appended (0 = no recorder).
  // Workload-trace accounting (zero when ExperimentConfig::trace inactive).
  uint64_t trace_jobs_recorded = 0;
  uint64_t trace_jobs_replayed = 0;
  // Cold-tier accounting (zero when ExperimentConfig::storage is off). The
  // manifest path is appended to `artifacts` after trace/postmortems.
  uint64_t cold_samples_spilled = 0;
  uint64_t cold_segments = 0;
  // The deepest budget scale the run's P(t) reached over the measured
  // window (1.0 for the constant schedule).
  double budget_scale_min = 1.0;
};

// Calibration helper: the arrival rate (jobs/minute) that drives the
// topology to `target_normalized_power` — power relative to the
// rO-scaled budget — in steady state (Little's law on the duration model and
// the demand mix, inverted through the power model). Benches use this to set
// up the paper's "light"/"heavy" workload levels.
double ArrivalRateForNormalizedPower(const TopologyConfig& topology,
                                     const BatchWorkloadParams& workload,
                                     double target_normalized_power,
                                     double over_provision_ratio);

// Pure entry point for the parallel scenario harness: constructs a fresh
// ControlledExperiment from `config`, runs the closed loop, and returns the
// result. The function touches no global mutable state — every stochastic
// component forks off the instance-owned RNG seeded from `config.seed`, the
// simulation clock/event queue/telemetry store are all instance members —
// so concurrent calls with distinct instances are safe and each call is a
// deterministic function of its config (bit-identical across thread
// counts). Logging goes through the global logger, which is mutexed and
// per-thread capturable (src/common/log_capture.h).
ExperimentResult RunExperimentToResult(const ExperimentConfig& config);

class ControlledExperiment {
 public:
  static constexpr const char* kExperimentGroup = "experiment";
  static constexpr const char* kControlGroup = "control";

  explicit ControlledExperiment(const ExperimentConfig& config);

  // Closed-loop run: warmup, then `duration` of measurement.
  ExperimentResult Run();

  // Fig. 5 calibration. f(u) in the controller's model is the power
  // reduction one interval of *freshly applied* freezing buys relative to
  // not freezing (the controller re-decides every minute, so this is the
  // operative quantity; after several constant-u minutes the groups reach a
  // new equilibrium and the per-minute difference washes out). The
  // procedure therefore cycles:
  //   [rest: all unfrozen, groups re-equalize] ->
  //   [hold: freeze u*n top-power servers, sample minutes 1..hold-1] -> ...
  // through `u_levels`, recording per-minute samples
  //   f = (dP_control - dP_experiment) / budget.
  // `selection` picks which servers each hold freezes (the paper always
  // freezes highest-power; alternatives feed the design-choice ablation).
  std::vector<FuSample> RunFuCalibration(
      std::span<const double> u_levels, SimTime hold, SimTime rest,
      SimTime total,
      FreezeSelection selection = FreezeSelection::kHighestPower);

  // --- Component access for custom benches and tests ---
  Simulation& sim() { return sim_; }
  DataCenter& dc() { return dc_; }
  Scheduler& scheduler() { return scheduler_; }
  PowerMonitor& monitor() { return monitor_; }
  TimeSeriesDb& db() { return db_; }
  AmpereController* controller() { return controller_.get(); }
  // The synthetic generator; null when config.trace replays a trace (use
  // trace_workload() there).
  BatchWorkload& workload() { return *workload_; }
  // Replay source; null unless config.trace.replay().
  TraceArrivalProcess* trace_workload() { return trace_workload_.get(); }
  // Recorder sink; null unless config.trace.recording().
  const TraceRecorder* trace_recorder() const {
    return trace_recorder_.get();
  }
  // Snapshot of the recorded trace, shareable into another config's
  // trace.replay_data. Requires config.trace.recording().
  std::shared_ptr<const TraceData> RecordedTrace() const;
  // Null unless config.faults has an active dimension.
  faults::FaultInjector* fault_injector() { return injector_.get(); }
  // Null unless config.obs.enabled(). Installed as the thread's current
  // recorder only while Run() executes.
  obs::FlightRecorder* flight_recorder() { return recorder_.get(); }
  // Null unless config.storage.enabled().
  ColdStore* cold_store() { return cold_store_.get(); }
  const std::vector<ServerId>& experiment_servers() const {
    return experiment_servers_;
  }
  const std::vector<ServerId>& control_servers() const {
    return control_servers_;
  }
  double experiment_budget_watts() const { return experiment_budget_watts_; }
  double control_budget_watts() const { return control_budget_watts_; }
  const ExperimentConfig& config() const { return config_; }

 private:
  void SplitGroups();
  void StartBaseline();  // Workload + monitor.
  // Installs the per-minute metrics recorder for [from, to).
  void InstallMetricsRecorder(SimTime from, SimTime to);
  // Anomaly sink: snapshots the recorder window + metrics + journal tail
  // into config.obs.postmortem_dir. Appends the path to artifacts_.
  void WritePostmortem(const obs::TimelineEvent& trigger);

  ExperimentConfig config_;
  Rng rng_;
  // Inner pool for intra-run batch passes (null when config.jobs <= 1).
  // Declared before the components that borrow it so it is destroyed last.
  std::unique_ptr<ThreadPool> pool_;
  Simulation sim_;
  DataCenter dc_;
  // Cold tier (null unless config.storage.enabled()); declared before db_
  // because the db spills into it from its append paths.
  std::unique_ptr<ColdStore> cold_store_;
  TimeSeriesDb db_;
  Scheduler scheduler_;
  PowerMonitor monitor_;
  JobIdAllocator ids_;
  std::unique_ptr<BatchWorkload> workload_;
  // Trace record/replay (null unless the config section asks for them).
  std::unique_ptr<TraceRecorder> trace_recorder_;
  std::unique_ptr<TraceArrivalProcess> trace_workload_;
  std::unique_ptr<AmpereController> controller_;
  std::unique_ptr<faults::FaultInjector> injector_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::vector<std::string> artifacts_;

  std::vector<ServerId> experiment_servers_;
  std::vector<ServerId> control_servers_;
  double experiment_budget_watts_ = 0.0;
  double control_budget_watts_ = 0.0;
  // The budget currently in force for the experiment domain:
  // experiment_budget_watts_ scaled by the schedule (equal to it, exactly,
  // under the constant schedule). Metrics normalize against this so a
  // curtailed minute counts violations against the curtailed cap.
  double current_experiment_budget_ = 0.0;
  double budget_scale_min_ = 1.0;

  // Metrics state.
  GroupReport experiment_report_;
  GroupReport control_report_;
  uint64_t window_thru_experiment_ = 0;
  uint64_t window_thru_control_ = 0;
  uint64_t minute_thru_experiment_ = 0;
  uint64_t minute_thru_control_ = 0;
  bool counting_ = false;
};

}  // namespace ampere

#endif  // SRC_CORE_EXPERIMENT_H_
