#include "src/workload/batch_workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/sim/simulation.h"

namespace ampere {
namespace {

// A sink that records submissions.
class RecordingSink : public JobSink {
 public:
  void Submit(const JobSpec& job) override { jobs.push_back(job); }
  std::vector<JobSpec> jobs;
};

BatchWorkloadParams FlatParams(double rate) {
  BatchWorkloadParams params;
  params.arrivals.base_rate_per_min = rate;
  params.arrivals.diurnal_amplitude = 0.0;
  params.arrivals.ar_sigma = 0.0;
  params.arrivals.burst_prob = 0.0;
  return params;
}

TEST(BatchWorkloadTest, GeneratesAtConfiguredRate) {
  Simulation sim;
  RecordingSink sink;
  JobIdAllocator ids;
  BatchWorkload workload(FlatParams(50.0), &sim, &sink, &ids, Rng(1));
  workload.Start(SimTime());
  sim.RunUntil(SimTime::Hours(2));
  EXPECT_NEAR(static_cast<double>(sink.jobs.size()), 6000.0, 300.0);
  // The generator counts jobs as it schedules them; the final minute's
  // batch may not have been delivered yet when the clock stops.
  EXPECT_GE(workload.jobs_generated(), sink.jobs.size());
  EXPECT_LE(workload.jobs_generated(), sink.jobs.size() + 200);
}

TEST(BatchWorkloadTest, JobIdsAreUniqueAndMonotone) {
  Simulation sim;
  RecordingSink sink;
  JobIdAllocator ids;
  BatchWorkload workload(FlatParams(30.0), &sim, &sink, &ids, Rng(2));
  workload.Start(SimTime());
  sim.RunUntil(SimTime::Minutes(30));
  ASSERT_GT(sink.jobs.size(), 100u);
  for (size_t i = 1; i < sink.jobs.size(); ++i) {
    EXPECT_GT(sink.jobs[i].id.value(), sink.jobs[i - 1].id.value());
  }
}

TEST(BatchWorkloadTest, SharedIdAllocatorAvoidsCollisions) {
  Simulation sim;
  RecordingSink sink;
  JobIdAllocator ids;
  BatchWorkload a(FlatParams(20.0), &sim, &sink, &ids, Rng(3));
  BatchWorkload b(FlatParams(20.0), &sim, &sink, &ids, Rng(4));
  a.Start(SimTime());
  b.Start(SimTime());
  sim.RunUntil(SimTime::Minutes(30));
  std::vector<int32_t> seen;
  for (const JobSpec& job : sink.jobs) {
    seen.push_back(job.id.value());
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end())
      << "duplicate job ids across generators";
}

TEST(BatchWorkloadTest, DefaultDemandMixAveragesTwoCores) {
  Simulation sim;
  RecordingSink sink;
  JobIdAllocator ids;
  BatchWorkload workload(FlatParams(100.0), &sim, &sink, &ids, Rng(5));
  workload.Start(SimTime());
  sim.RunUntil(SimTime::Hours(3));
  double cores = 0.0;
  for (const JobSpec& job : sink.jobs) {
    cores += job.demand.cpu_cores;
  }
  EXPECT_NEAR(cores / static_cast<double>(sink.jobs.size()), 2.0, 0.05);
}

TEST(BatchWorkloadTest, CustomDemandMixRespected) {
  Simulation sim;
  RecordingSink sink;
  JobIdAllocator ids;
  BatchWorkloadParams params = FlatParams(60.0);
  params.demands = {{Resources{3.0, 6.0}, 1.0}};
  BatchWorkload workload(params, &sim, &sink, &ids, Rng(6));
  workload.Start(SimTime());
  sim.RunUntil(SimTime::Minutes(20));
  ASSERT_FALSE(sink.jobs.empty());
  for (const JobSpec& job : sink.jobs) {
    EXPECT_DOUBLE_EQ(job.demand.cpu_cores, 3.0);
    EXPECT_DOUBLE_EQ(job.demand.memory_gb, 6.0);
  }
}

TEST(BatchWorkloadTest, RowAffinityPropagates) {
  Simulation sim;
  RecordingSink sink;
  JobIdAllocator ids;
  BatchWorkloadParams params = FlatParams(40.0);
  params.row_affinity = RowId(3);
  BatchWorkload workload(params, &sim, &sink, &ids, Rng(7));
  workload.Start(SimTime());
  sim.RunUntil(SimTime::Minutes(10));
  ASSERT_FALSE(sink.jobs.empty());
  for (const JobSpec& job : sink.jobs) {
    ASSERT_TRUE(job.row_affinity.has_value());
    EXPECT_EQ(*job.row_affinity, RowId(3));
  }
}

TEST(BatchWorkloadTest, DeterministicGivenSeed) {
  auto run = [] {
    Simulation sim;
    RecordingSink sink;
    JobIdAllocator ids;
    BatchWorkload workload(FlatParams(25.0), &sim, &sink, &ids, Rng(42));
    workload.Start(SimTime());
    sim.RunUntil(SimTime::Hours(1));
    double fingerprint = 0.0;
    for (const JobSpec& job : sink.jobs) {
      fingerprint += job.duration.seconds() + job.demand.cpu_cores;
    }
    return std::pair{sink.jobs.size(), fingerprint};
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

TEST(BatchWorkloadTest, DelayedStartGeneratesNothingBefore) {
  Simulation sim;
  RecordingSink sink;
  JobIdAllocator ids;
  BatchWorkload workload(FlatParams(50.0), &sim, &sink, &ids, Rng(8));
  workload.Start(SimTime::Hours(1));
  sim.RunUntil(SimTime::Minutes(59));
  EXPECT_TRUE(sink.jobs.empty());
  sim.RunUntil(SimTime::Minutes(90));
  EXPECT_FALSE(sink.jobs.empty());
}

}  // namespace
}  // namespace ampere
