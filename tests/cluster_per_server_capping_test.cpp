// Tests for the per-server RAPL capping mode (CappingMode::kPerServer):
// each server is throttled individually against its static share of the
// row budget, which is how fleet RAPL deployments assign limits.

#include <gtest/gtest.h>

#include "src/cluster/datacenter.h"

#include "src/common/check.h"

namespace ampere {
namespace {

TopologyConfig PerServerTopology(double row_budget) {
  TopologyConfig config;
  config.num_rows = 1;
  config.racks_per_row = 1;
  config.servers_per_rack = 4;
  config.server_capacity = Resources{16.0, 64.0};
  config.capping_enabled = true;
  config.capping_mode = CappingMode::kPerServer;
  config.row_budget_watts = row_budget;
  return config;
}

TEST(PerServerCappingTest, OnlyOverdrawnServersAreThrottled) {
  Simulation sim;
  // Per-server share: 820/4 = 205 W; idle 162.5, so a server may draw up
  // to 42.5 W of dynamic power (48.6 % utilization) before throttling.
  DataCenter dc(PerServerTopology(820.0), &sim);
  // Server 0: light load (25 %), stays uncapped.
  ASSERT_TRUE(dc.PlaceTask(ServerId(0), TaskSpec{JobId(1), Resources{4.0, 4.0},
                                                 SimTime::Hours(1)}));
  // Server 1: heavy load (100 %), must be throttled.
  ASSERT_TRUE(dc.PlaceTask(ServerId(1),
                           TaskSpec{JobId(2), Resources{16.0, 16.0},
                                    SimTime::Hours(1)}));
  EXPECT_FALSE(dc.IsServerCapped(ServerId(0)));
  EXPECT_TRUE(dc.IsServerCapped(ServerId(1)));
  EXPECT_FALSE(dc.IsServerCapped(ServerId(2)));  // Idle.
  EXPECT_NEAR(dc.FractionOfServersCapped(RowId(0)), 0.25, 1e-12);
  // The capped server honors its share: 162.5 + 87.5 * f <= 205 needs
  // f <= 0.486 -> ladder floor 0.5 is the best hardware can do (slightly
  // over, like real RAPL at its lowest P-state).
  EXPECT_DOUBLE_EQ(dc.server(ServerId(1)).frequency(), 0.5);
}

TEST(PerServerCappingTest, ThrottleReleasesWhenLoadEnds) {
  Simulation sim;
  DataCenter dc(PerServerTopology(820.0), &sim);
  ASSERT_TRUE(dc.PlaceTask(ServerId(1),
                           TaskSpec{JobId(2), Resources{16.0, 16.0},
                                    SimTime::Minutes(10)}));
  ASSERT_TRUE(dc.IsServerCapped(ServerId(1)));
  // Runs at f = 0.5 -> finishes at 20 min.
  sim.RunUntil(SimTime::Minutes(21));
  EXPECT_FALSE(dc.IsServerCapped(ServerId(1)));
  EXPECT_DOUBLE_EQ(dc.FractionOfServersCapped(RowId(0)), 0.0);
  EXPECT_NEAR(dc.row_capped_time(RowId(0)).minutes(), 20.0, 0.1);
}

TEST(PerServerCappingTest, CappedTimeClockCountsAnyCappedServer) {
  Simulation sim;
  DataCenter dc(PerServerTopology(820.0), &sim);
  // Two staggered heavy tasks: server 1 capped [0, 20], server 2's task
  // placed at t=10 capped [10, 30]. Row capped time = 30 min (union).
  ASSERT_TRUE(dc.PlaceTask(ServerId(1),
                           TaskSpec{JobId(1), Resources{16.0, 16.0},
                                    SimTime::Minutes(10)}));
  sim.ScheduleAt(SimTime::Minutes(10), [&dc] {
    AMPERE_CHECK(dc.PlaceTask(ServerId(2),
                              TaskSpec{JobId(2), Resources{16.0, 16.0},
                                       SimTime::Minutes(10)}));
  });
  sim.RunUntil(SimTime::Minutes(40));
  EXPECT_NEAR(dc.row_capped_time(RowId(0)).minutes(), 30.0, 0.1);
}

TEST(PerServerCappingTest, DisablingReleasesAllServers) {
  Simulation sim;
  DataCenter dc(PerServerTopology(820.0), &sim);
  for (int32_t s = 0; s < 4; ++s) {
    ASSERT_TRUE(dc.PlaceTask(ServerId(s),
                             TaskSpec{JobId(s), Resources{16.0, 16.0},
                                      SimTime::Hours(1)}));
  }
  EXPECT_DOUBLE_EQ(dc.FractionOfServersCapped(RowId(0)), 1.0);
  dc.SetCappingEnabled(false);
  EXPECT_DOUBLE_EQ(dc.FractionOfServersCapped(RowId(0)), 0.0);
  for (int32_t s = 0; s < 4; ++s) {
    EXPECT_DOUBLE_EQ(dc.server(ServerId(s)).frequency(), 1.0);
  }
}

TEST(PerServerCappingTest, LoweringBudgetRechecksEveryServer) {
  Simulation sim;
  // Generous budget first: nobody capped.
  DataCenter dc(PerServerTopology(1000.0), &sim);
  for (int32_t s = 0; s < 4; ++s) {
    ASSERT_TRUE(dc.PlaceTask(ServerId(s),
                             TaskSpec{JobId(s), Resources{16.0, 16.0},
                                      SimTime::Hours(1)}));
  }
  EXPECT_DOUBLE_EQ(dc.FractionOfServersCapped(RowId(0)), 0.0);
  dc.SetRowCappingBudget(RowId(0), 820.0);
  EXPECT_DOUBLE_EQ(dc.FractionOfServersCapped(RowId(0)), 1.0);
}

TEST(PerServerCappingTest, UniformModeStillCountsCappedServers) {
  Simulation sim;
  TopologyConfig config = PerServerTopology(850.0);
  config.capping_mode = CappingMode::kRowUniform;
  DataCenter dc(config, &sim);
  for (int32_t s = 0; s < 4; ++s) {
    ASSERT_TRUE(dc.PlaceTask(ServerId(s),
                             TaskSpec{JobId(s), Resources{16.0, 16.0},
                                      SimTime::Hours(1)}));
  }
  // Uniform throttle caps everyone at once.
  EXPECT_DOUBLE_EQ(dc.FractionOfServersCapped(RowId(0)), 1.0);
  EXPECT_LT(dc.row_throttle(RowId(0)), 1.0);
}

}  // namespace
}  // namespace ampere
