#include "src/stats/descriptive.h"

#include <gtest/gtest.h>

#include <vector>

namespace ampere {
namespace {

TEST(SummarizeTest, EmptyInput) {
  Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(SummarizeTest, KnownValues) {
  std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  Summary s = Summarize(v);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.sum, 40.0);
  // Sample variance with n-1: sum of squared devs = 32, / 7.
  EXPECT_NEAR(s.variance, 32.0 / 7.0, 1e-12);
}

TEST(OnlineStatsTest, SingleValue) {
  OnlineStats acc;
  acc.Add(3.5);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 3.5);
  EXPECT_DOUBLE_EQ(acc.max(), 3.5);
}

TEST(OnlineStatsTest, MatchesBatchOnRandomStream) {
  OnlineStats acc;
  std::vector<double> v;
  double x = 0.1;
  for (int i = 0; i < 1000; ++i) {
    x = 3.9 * x * (1.0 - x);  // Deterministic chaotic stream.
    acc.Add(x);
    v.push_back(x);
  }
  Summary batch = Summarize(v);
  EXPECT_NEAR(acc.mean(), batch.mean, 1e-12);
  EXPECT_NEAR(acc.variance(), batch.variance, 1e-10);
  EXPECT_DOUBLE_EQ(acc.min(), batch.min);
  EXPECT_DOUBLE_EQ(acc.max(), batch.max);
}

TEST(OnlineStatsTest, NumericallyStableWithLargeOffset) {
  OnlineStats acc;
  const double offset = 1e9;
  acc.Add(offset + 1.0);
  acc.Add(offset + 2.0);
  acc.Add(offset + 3.0);
  EXPECT_NEAR(acc.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(acc.variance(), 1.0, 1e-6);
}

}  // namespace
}  // namespace ampere
