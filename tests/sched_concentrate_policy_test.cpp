#include <gtest/gtest.h>

#include "src/sched/scheduler.h"

namespace ampere {
namespace {

TopologyConfig FourRowTopology() {
  TopologyConfig config;
  config.num_rows = 4;
  config.racks_per_row = 1;
  config.servers_per_rack = 8;
  config.server_capacity = Resources{16.0, 64.0};
  return config;
}

JobSpec MakeJob(int32_t id, double cores = 2.0,
                SimTime duration = SimTime::Hours(10)) {
  JobSpec job;
  job.id = JobId(id);
  job.demand = Resources{cores, cores * 2.0};
  job.duration = duration;
  return job;
}

struct Fixture {
  Simulation sim;
  DataCenter dc;
  Scheduler scheduler;
  explicit Fixture(double ceiling = 0.92)
      : dc(FourRowTopology(), &sim),
        scheduler(&dc, MakeConfig(ceiling), Rng(23)) {}
  static SchedulerConfig MakeConfig(double ceiling) {
    SchedulerConfig config;
    config.policy = PlacementPolicy::kConcentrateRows;
    config.concentrate_power_ceiling = ceiling;
    return config;
  }
};

TEST(ConcentratePolicyTest, PacksOneRowBeforeSpilling) {
  Fixture f;
  // 8 servers/row * 16 cores = 128 cores per row. 40 jobs of 2 cores fit
  // comfortably in one row's CPU, and its power stays below the ceiling
  // (util 0.625 -> power 0.87 of rated).
  for (int i = 0; i < 40; ++i) {
    f.scheduler.Submit(MakeJob(i));
  }
  uint64_t in_rows[4];
  uint64_t max_row = 0;
  for (int32_t r = 0; r < 4; ++r) {
    in_rows[r] = f.scheduler.placements_in_row(RowId(r));
    max_row = std::max(max_row, in_rows[r]);
  }
  EXPECT_EQ(max_row, 40u) << "all jobs should land on one row";
}

TEST(ConcentratePolicyTest, CeilingStopsPacking) {
  Fixture f(/*ceiling=*/0.80);
  // Power ceiling 0.80 -> util ceiling (0.8-0.65)/0.35 = 0.43 -> ~55 cores
  // of 128. Submitting 60 jobs x 2 cores = 120 cores must spill into at
  // least two rows.
  for (int i = 0; i < 60; ++i) {
    f.scheduler.Submit(MakeJob(i));
  }
  int rows_used = 0;
  for (int32_t r = 0; r < 4; ++r) {
    if (f.scheduler.placements_in_row(RowId(r)) > 0) {
      ++rows_used;
    }
  }
  EXPECT_GE(rows_used, 2);
  EXPECT_LE(rows_used, 3);
  EXPECT_EQ(f.scheduler.jobs_placed(), 60u);  // Work-conserving.
}

TEST(ConcentratePolicyTest, RespectsRowAffinity) {
  Fixture f;
  for (int i = 0; i < 10; ++i) {
    JobSpec job = MakeJob(100 + i);
    job.row_affinity = RowId(2);
    f.scheduler.Submit(job);
  }
  EXPECT_EQ(f.scheduler.placements_in_row(RowId(2)), 10u);
}

TEST(ConcentratePolicyTest, SkipsFrozenServersInHotRow) {
  Fixture f;
  // Freeze every server in what would be the hottest row after the first
  // placement: jobs must go elsewhere, not stall.
  f.scheduler.Submit(MakeJob(0));
  RowId hot;
  for (int32_t r = 0; r < 4; ++r) {
    if (f.scheduler.placements_in_row(RowId(r)) > 0) {
      hot = RowId(r);
    }
  }
  for (ServerId id : f.dc.servers_in_row(hot)) {
    f.scheduler.Freeze(id);
  }
  for (int i = 1; i <= 10; ++i) {
    f.scheduler.Submit(MakeJob(i));
  }
  EXPECT_EQ(f.scheduler.jobs_placed(), 11u);
  EXPECT_EQ(f.scheduler.placements_in_row(hot), 1u);
}

TEST(ConcentratePolicyTest, FallsBackWhenAllRowsAboveCeiling) {
  // Ceiling below idle power: every row is always "too hot", so the policy
  // must fall back to random-fit rather than queueing everything.
  Fixture f(/*ceiling=*/0.5);
  for (int i = 0; i < 10; ++i) {
    f.scheduler.Submit(MakeJob(i));
  }
  EXPECT_EQ(f.scheduler.jobs_placed(), 10u);
}

TEST(PowerAwareSpreadTest, PrefersColdestRow) {
  Simulation sim;
  DataCenter dc(FourRowTopology(), &sim);
  SchedulerConfig config;
  config.policy = PlacementPolicy::kPowerAwareSpread;
  Scheduler scheduler(&dc, config, Rng(31));
  // Pre-heat rows 0-2 with resident load; row 3 stays cold.
  for (int32_t r = 0; r < 3; ++r) {
    for (ServerId id : dc.servers_in_row(RowId(r))) {
      dc.PlaceTask(id, TaskSpec{JobId(1000 + id.value()),
                                Resources{8.0, 8.0}, SimTime::Hours(10)});
    }
  }
  for (int i = 0; i < 12; ++i) {
    scheduler.Submit(MakeJob(i));
  }
  EXPECT_EQ(scheduler.placements_in_row(RowId(3)), 12u);
}

TEST(PowerAwareSpreadTest, RefusesRowsAboveCeilingUntilForced) {
  Simulation sim;
  DataCenter dc(FourRowTopology(), &sim);
  SchedulerConfig config;
  config.policy = PlacementPolicy::kPowerAwareSpread;
  config.concentrate_power_ceiling = 0.80;
  Scheduler scheduler(&dc, config, Rng(32));
  // Heat every row above the 0.80 ceiling (util 0.75 -> power 0.91).
  for (int32_t s = 0; s < dc.num_servers(); ++s) {
    dc.PlaceTask(ServerId(s), TaskSpec{JobId(2000 + s),
                                       Resources{12.0, 12.0},
                                       SimTime::Hours(10)});
  }
  // Work-conserving fallback: jobs still place despite every row being
  // over the ceiling.
  for (int i = 0; i < 8; ++i) {
    scheduler.Submit(MakeJob(i, 2.0));
  }
  EXPECT_EQ(scheduler.jobs_placed(), 8u);
}

}  // namespace
}  // namespace ampere
