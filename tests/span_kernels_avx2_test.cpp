// Intrinsic-vs-portable identity for the blocked span reduction.
//
// This translation unit is compiled with -mavx2 (see tests/CMakeLists.txt),
// so span_kernels::SumBlocked4 resolves to the vaddpd intrinsic body here —
// unlike the rest of the test suite, which is built without -mavx2 and gets
// the portable body. The contract (span_kernels.h) is that both spell the
// exact same association, so they must agree bit-for-bit on any input. A
// runtime cpu check keeps the test a no-op skip on hardware without AVX2
// (the binary would fault executing vaddpd there).

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/span_kernels.h"

namespace ampere {
namespace {

#if defined(__AVX2__)

TEST(SpanKernelsAvx2Test, IntrinsicMatchesPortableBitForBit) {
  if (!__builtin_cpu_supports("avx2")) {
    GTEST_SKIP() << "host cpu lacks avx2";
  }
  Rng rng(20160416);
  // Adversarial magnitudes: mixing tiny and huge addends maximizes the
  // rounding differences BETWEEN association orders, so if the intrinsic
  // deviated from the portable order at all, these inputs would expose it.
  std::vector<double> x(1031);
  for (size_t i = 0; i < x.size(); ++i) {
    const double magnitude = (i % 3 == 0) ? 1e-9 : (i % 3 == 1 ? 1.0 : 1e9);
    x[i] = rng.Uniform(-magnitude, magnitude);
  }
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{7},
                   size_t{8}, size_t{42}, size_t{420}, size_t{1024},
                   size_t{1031}}) {
    EXPECT_EQ(span_kernels::SumBlocked4Avx2(x.data(), n),
              span_kernels::SumBlocked4Portable(x.data(), n))
        << "n=" << n;
    EXPECT_EQ(span_kernels::SumBlocked4(x.data(), n),
              span_kernels::SumBlocked4Avx2(x.data(), n))
        << "dispatcher must pick the intrinsic here, n=" << n;
  }
}

TEST(SpanKernelsAvx2Test, UnalignedBaseStillMatches) {
  if (!__builtin_cpu_supports("avx2")) {
    GTEST_SKIP() << "host cpu lacks avx2";
  }
  // The intrinsic path uses unaligned loads; sums taken from every offset
  // of a misaligned window must still match the portable order.
  Rng rng(7);
  std::vector<double> x(64);
  for (double& v : x) {
    v = rng.Uniform(80.0, 260.0);
  }
  for (size_t offset = 0; offset < 8; ++offset) {
    EXPECT_EQ(span_kernels::SumBlocked4Avx2(x.data() + offset, 42),
              span_kernels::SumBlocked4Portable(x.data() + offset, 42))
        << "offset=" << offset;
  }
}

#else
TEST(SpanKernelsAvx2Test, CompiledWithoutAvx2) {
  GTEST_SKIP() << "TU built without -mavx2; dispatcher identity is covered "
                  "by BatchedKernelIdentityTest";
}
#endif

}  // namespace
}  // namespace ampere
