#include "src/workload/interactive_service.h"

#include <gtest/gtest.h>

#include "src/common/check.h"

namespace ampere {
namespace {

TopologyConfig OneRackTopology() {
  TopologyConfig config;
  config.num_rows = 1;
  config.racks_per_row = 1;
  config.servers_per_rack = 4;
  config.server_capacity = Resources{16.0, 64.0};
  return config;
}

InteractiveServiceParams ServiceParams(std::vector<ServerId> servers) {
  InteractiveServiceParams p;
  p.servers = std::move(servers);
  p.requests_per_sec_per_server = 1000.0;
  return p;
}

TEST(RedisOpTest, NamesAndCostsDefined) {
  for (int i = 0; i < kNumRedisOps; ++i) {
    auto op = static_cast<RedisOp>(i);
    EXPECT_STRNE(RedisOpName(op), "?");
    EXPECT_GT(RedisOpBaseServiceMicros(op), 0.0);
  }
  // LRANGE_600 is the expensive scan op.
  EXPECT_GT(RedisOpBaseServiceMicros(RedisOp::kLrange600),
            5.0 * RedisOpBaseServiceMicros(RedisOp::kGet));
}

TEST(InteractiveServiceTest, ServesRequestsAndRecordsLatency) {
  Simulation sim;
  DataCenter dc(OneRackTopology(), &sim);
  InteractiveService service(
      ServiceParams({ServerId(0), ServerId(1)}), &sim, &dc, Rng(1));
  service.Run(SimTime::Seconds(1), SimTime::Seconds(31), SimTime::Seconds(1));
  sim.RunUntil(SimTime::Seconds(40));
  EXPECT_GT(service.requests_served(), 40000u);
  uint64_t recorded = 0;
  for (int i = 0; i < kNumRedisOps; ++i) {
    recorded += service.latency_histogram(static_cast<RedisOp>(i)).count();
  }
  EXPECT_GT(recorded, 40000u);
}

TEST(InteractiveServiceTest, ResidentTaskRaisesServerPower) {
  Simulation sim;
  DataCenter dc(OneRackTopology(), &sim);
  double idle = dc.server_power_watts(ServerId(0));
  InteractiveService service(ServiceParams({ServerId(0)}), &sim, &dc, Rng(2));
  service.Run(SimTime::Seconds(1), SimTime::Seconds(2), SimTime::Seconds(1));
  EXPECT_GT(dc.server_power_watts(ServerId(0)), idle);
}

TEST(InteractiveServiceTest, LatencyUnaffectedServersFasterThanThrottled) {
  // Two identical single-server services; one server gets capped.
  Simulation sim;
  TopologyConfig config = OneRackTopology();
  DataCenter dc(config, &sim);

  InteractiveService fast(ServiceParams({ServerId(0)}), &sim, &dc, Rng(3));
  InteractiveService slow(ServiceParams({ServerId(1)}), &sim, &dc, Rng(3));
  fast.Run(SimTime::Seconds(1), SimTime::Seconds(61), SimTime::Seconds(5));
  slow.Run(SimTime::Seconds(1), SimTime::Seconds(61), SimTime::Seconds(5));

  // Throttle the whole row (both servers share it), then un-reserve the
  // fast one by... we cannot throttle per-server through the public API, so
  // instead enable capping with a budget that forces a row-wide throttle and
  // compare against an uncapped duplicate simulation. Simpler here: compare
  // the same service under different frequencies using two simulations.
  sim.RunUntil(SimTime::Seconds(70));
  double fast_p999 = fast.latency_histogram(RedisOp::kGet).Quantile(0.999);

  Simulation sim2;
  TopologyConfig capped = OneRackTopology();
  capped.capping_enabled = true;
  // Idle 650 + resident dynamic; force the minimum 0.5 step by a budget just
  // above the idle floor.
  capped.row_budget_watts = 4 * 162.5 + 10.0;
  DataCenter dc2(capped, &sim2);
  InteractiveService throttled(ServiceParams({ServerId(1)}), &sim2, &dc2,
                               Rng(3));
  throttled.Run(SimTime::Seconds(1), SimTime::Seconds(61),
                SimTime::Seconds(5));
  sim2.RunUntil(SimTime::Seconds(70));
  ASSERT_LT(dc2.server(ServerId(1)).frequency(), 1.0);
  double slow_p999 =
      throttled.latency_histogram(RedisOp::kGet).Quantile(0.999);

  // Halving the clock should roughly double tail latency (or worse, with
  // queueing).
  EXPECT_GT(slow_p999, 1.5 * fast_p999);
}

TEST(InteractiveServiceTest, OpsSampledUniformly) {
  Simulation sim;
  DataCenter dc(OneRackTopology(), &sim);
  InteractiveService service(ServiceParams({ServerId(0)}), &sim, &dc,
                             Rng(9));
  service.Run(SimTime::Seconds(1), SimTime::Seconds(121),
              SimTime::Seconds(1));
  sim.RunUntil(SimTime::Seconds(130));
  uint64_t total = 0;
  for (int i = 0; i < kNumRedisOps; ++i) {
    total += service.latency_histogram(static_cast<RedisOp>(i)).count();
  }
  ASSERT_GT(total, 50000u);
  for (int i = 0; i < kNumRedisOps; ++i) {
    double share =
        static_cast<double>(
            service.latency_histogram(static_cast<RedisOp>(i)).count()) /
        static_cast<double>(total);
    EXPECT_NEAR(share, 1.0 / kNumRedisOps, 0.02)
        << RedisOpName(static_cast<RedisOp>(i));
  }
}

TEST(InteractiveServiceTest, ExpensiveOpsHaveHigherMeanLatency) {
  Simulation sim;
  DataCenter dc(OneRackTopology(), &sim);
  InteractiveService service(ServiceParams({ServerId(0)}), &sim, &dc,
                             Rng(10));
  service.Run(SimTime::Seconds(1), SimTime::Seconds(61),
              SimTime::Seconds(1));
  sim.RunUntil(SimTime::Seconds(70));
  double get_mean = service.latency_histogram(RedisOp::kGet).mean();
  double lrange_mean =
      service.latency_histogram(RedisOp::kLrange600).mean();
  EXPECT_GT(lrange_mean, 3.0 * get_mean);
}

TEST(InteractiveServiceTest, RequiresServers) {
  Simulation sim;
  DataCenter dc(OneRackTopology(), &sim);
  InteractiveServiceParams p;
  p.servers = {};
  EXPECT_THROW(InteractiveService(p, &sim, &dc, Rng(1)), CheckFailure);
}

}  // namespace
}  // namespace ampere
