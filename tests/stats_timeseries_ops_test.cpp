#include "src/stats/timeseries_ops.h"

#include <gtest/gtest.h>

#include <vector>

namespace ampere {
namespace {

TEST(FirstOrderDifferencesTest, Basic) {
  std::vector<double> v{1.0, 3.0, 2.0, 6.0};
  auto d = FirstOrderDifferences(v);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 2.0);
  EXPECT_DOUBLE_EQ(d[1], -1.0);
  EXPECT_DOUBLE_EQ(d[2], 4.0);
}

TEST(FirstOrderDifferencesTest, ShortInputsEmpty) {
  EXPECT_TRUE(FirstOrderDifferences({}).empty());
  std::vector<double> one{1.0};
  EXPECT_TRUE(FirstOrderDifferences(one).empty());
}

TEST(WindowedMaxTest, ExactWindows) {
  std::vector<double> v{1.0, 5.0, 2.0, 4.0, 3.0, 6.0};
  auto m = WindowedMax(v, 2);
  ASSERT_EQ(m.size(), 3u);
  EXPECT_DOUBLE_EQ(m[0], 5.0);
  EXPECT_DOUBLE_EQ(m[1], 4.0);
  EXPECT_DOUBLE_EQ(m[2], 6.0);
}

TEST(WindowedMaxTest, RaggedTail) {
  std::vector<double> v{1.0, 2.0, 3.0, 9.0, 4.0};
  auto m = WindowedMax(v, 3);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m[0], 3.0);
  EXPECT_DOUBLE_EQ(m[1], 9.0);
}

TEST(WindowedMaxTest, WindowOneIsIdentity) {
  std::vector<double> v{3.0, 1.0, 2.0};
  auto m = WindowedMax(v, 1);
  EXPECT_EQ(m, v);
}

TEST(ScaledPowerChangesTest, MatchesFigure9Method) {
  // Per-minute series; 2-minute scale = diffs of per-2-min maxima.
  std::vector<double> v{1.0, 3.0, 2.0, 2.5, 4.0, 1.0};
  auto changes = ScaledPowerChanges(v, 2);
  // Maxima: 3.0, 2.5, 4.0 -> diffs: -0.5, 1.5.
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_DOUBLE_EQ(changes[0], -0.5);
  EXPECT_DOUBLE_EQ(changes[1], 1.5);
}

TEST(HourlyIncreaseQuantileTest, AttributesToCorrectHour) {
  // 3 hours of per-minute data: hour 0 flat, hour 1 rises by 2 per minute,
  // hour 2 falls by 1 per minute.
  std::vector<double> series;
  double v = 0.0;
  for (int m = 0; m < 60; ++m) {
    series.push_back(v);
  }
  for (int m = 0; m < 60; ++m) {
    v += 2.0;
    series.push_back(v);
  }
  for (int m = 0; m < 60; ++m) {
    v -= 1.0;
    series.push_back(v);
  }
  auto profile = HourlyIncreaseQuantile(series, 0, 0.5, -99.0);
  EXPECT_DOUBLE_EQ(profile[0], 0.0);   // Mostly zero increases.
  EXPECT_DOUBLE_EQ(profile[1], 2.0);
  EXPECT_DOUBLE_EQ(profile[2], -1.0);
  EXPECT_DOUBLE_EQ(profile[3], -99.0);  // No data -> fallback.
}

TEST(HourlyIncreaseQuantileTest, StartOffsetShiftsAttribution) {
  // Series starting at 23:30: the first 30 diffs belong to hour 23.
  std::vector<double> series;
  for (int m = 0; m <= 30; ++m) {
    series.push_back(static_cast<double>(m) * 5.0);
  }
  auto profile = HourlyIncreaseQuantile(series, 23 * 60 + 30, 0.5, 0.0);
  EXPECT_DOUBLE_EQ(profile[23], 5.0);
  EXPECT_DOUBLE_EQ(profile[0], 0.0);  // Fallback: no hour-0 samples.
}

}  // namespace
}  // namespace ampere
