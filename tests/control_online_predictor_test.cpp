#include "src/control/online_predictor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace ampere {
namespace {

TEST(OnlinePredictorTest, BootstrapMarginBeforeData) {
  OnlinePredictorParams params;
  params.bootstrap_margin = 0.042;
  OnlineEtPredictor predictor(params);
  EXPECT_DOUBLE_EQ(predictor.Margin(), 0.042);
  predictor.Observe(0.9);
  EXPECT_DOUBLE_EQ(predictor.Margin(), 0.042);
}

TEST(OnlinePredictorTest, ConstantSeriesYieldsTinyMargin) {
  OnlineEtPredictor predictor;
  for (int i = 0; i < 100; ++i) {
    predictor.Observe(0.9);
  }
  EXPECT_NEAR(predictor.PredictedIncrease(), 0.0, 1e-12);
  EXPECT_LT(predictor.Margin(), 0.001);
}

TEST(OnlinePredictorTest, LinearRampPredictsTheSlope) {
  OnlineEtPredictor predictor;
  double p = 0.5;
  for (int i = 0; i < 200; ++i) {
    predictor.Observe(p);
    p += 0.004;
  }
  EXPECT_NEAR(predictor.PredictedIncrease(), 0.004, 5e-4);
  // Margin covers the predicted increase.
  EXPECT_GE(predictor.Margin(), 0.003);
}

TEST(OnlinePredictorTest, MarginScalesWithNoise) {
  Rng rng(5);
  OnlineEtPredictor calm;
  OnlineEtPredictor wild;
  for (int i = 0; i < 500; ++i) {
    calm.Observe(0.9 + rng.Normal(0.0, 0.002));
    wild.Observe(0.9 + rng.Normal(0.0, 0.02));
  }
  EXPECT_GT(wild.Margin(), 2.0 * calm.Margin());
}

TEST(OnlinePredictorTest, MarginCoversTailOfIidIncreases) {
  // For iid Gaussian increases, margin should cover ~99.5 % of them.
  Rng rng(6);
  OnlineEtPredictor predictor;
  double p = 0.9;
  std::vector<double> margins;
  std::vector<double> next_increase;
  double prev_margin = 0.0;
  for (int i = 0; i < 4000; ++i) {
    double inc = rng.Normal(0.0, 0.01);
    p += inc;
    if (i > 500) {
      margins.push_back(prev_margin);
      next_increase.push_back(inc);
    }
    predictor.Observe(p);
    prev_margin = predictor.Margin();
  }
  int covered = 0;
  for (size_t i = 0; i < margins.size(); ++i) {
    if (next_increase[i] <= margins[i]) {
      ++covered;
    }
  }
  double coverage = static_cast<double>(covered) /
                    static_cast<double>(margins.size());
  EXPECT_GT(coverage, 0.985);
}

TEST(OnlinePredictorTest, AdaptsToRegimeChangeWithinWindow) {
  Rng rng(7);
  OnlinePredictorParams params;
  params.window = 60;
  OnlineEtPredictor predictor(params);
  double p = 0.9;
  for (int i = 0; i < 300; ++i) {
    p += rng.Normal(0.0, 0.001);
    predictor.Observe(p);
  }
  double calm_margin = predictor.Margin();
  for (int i = 0; i < 300; ++i) {
    p += rng.Normal(0.0, 0.02);
    predictor.Observe(p);
  }
  double wild_margin = predictor.Margin();
  EXPECT_GT(wild_margin, 3.0 * calm_margin);
}

TEST(OnlinePredictorTest, MarginRespectsBounds) {
  OnlinePredictorParams params;
  params.min_margin = 0.005;
  params.max_margin = 0.05;
  OnlineEtPredictor predictor(params);
  Rng rng(8);
  double p = 0.9;
  for (int i = 0; i < 200; ++i) {
    p += rng.Normal(0.0, 0.2);  // Absurd volatility.
    predictor.Observe(p);
  }
  EXPECT_LE(predictor.Margin(), 0.05);
  // And a falling deterministic series cannot push the margin below min.
  OnlineEtPredictor falling(params);
  for (int i = 0; i < 200; ++i) {
    falling.Observe(1.0 - 0.001 * i);
  }
  EXPECT_GE(falling.Margin(), 0.005);
}

TEST(OnlinePredictorTest, InvalidParamsThrow) {
  OnlinePredictorParams params;
  params.window = 2;
  EXPECT_THROW(OnlineEtPredictor{params}, CheckFailure);
  params = OnlinePredictorParams{};
  params.variance_alpha = 0.0;
  EXPECT_THROW(OnlineEtPredictor{params}, CheckFailure);
  params = OnlinePredictorParams{};
  params.max_margin = params.min_margin;
  EXPECT_THROW(OnlineEtPredictor{params}, CheckFailure);
}

}  // namespace
}  // namespace ampere
