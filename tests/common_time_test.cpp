#include "src/common/time.h"

#include <gtest/gtest.h>

namespace ampere {
namespace {

TEST(SimTimeTest, DefaultIsZero) {
  EXPECT_EQ(SimTime().micros(), 0);
  EXPECT_DOUBLE_EQ(SimTime().seconds(), 0.0);
}

TEST(SimTimeTest, UnitConversionsRoundTrip) {
  EXPECT_EQ(SimTime::Seconds(1).micros(), 1000000);
  EXPECT_EQ(SimTime::Millis(1.5).micros(), 1500);
  EXPECT_EQ(SimTime::Minutes(1).micros(), 60000000);
  EXPECT_EQ(SimTime::Hours(1).minutes(), 60.0);
  EXPECT_DOUBLE_EQ(SimTime::Minutes(2.5).seconds(), 150.0);
}

TEST(SimTimeTest, Arithmetic) {
  SimTime t = SimTime::Minutes(2) + SimTime::Seconds(30);
  EXPECT_DOUBLE_EQ(t.seconds(), 150.0);
  t -= SimTime::Seconds(50);
  EXPECT_DOUBLE_EQ(t.seconds(), 100.0);
  EXPECT_DOUBLE_EQ((t * 2.0).seconds(), 200.0);
  EXPECT_DOUBLE_EQ((t * 0.5).seconds(), 50.0);
}

TEST(SimTimeTest, Comparisons) {
  EXPECT_LT(SimTime::Seconds(59), SimTime::Minutes(1));
  EXPECT_EQ(SimTime::Seconds(60), SimTime::Minutes(1));
  EXPECT_GT(SimTime::Hours(1), SimTime::Minutes(59));
}

TEST(SimTimeTest, HourOfDayWrapsAtMidnight) {
  EXPECT_EQ(SimTime::Hours(0).hour_of_day(), 0);
  EXPECT_EQ(SimTime::Hours(13.5).hour_of_day(), 13);
  EXPECT_EQ(SimTime::Hours(23.99).hour_of_day(), 23);
  EXPECT_EQ(SimTime::Hours(24).hour_of_day(), 0);
  EXPECT_EQ(SimTime::Hours(49).hour_of_day(), 1);
}

TEST(SimTimeTest, MinuteIndex) {
  EXPECT_EQ(SimTime::Seconds(59).minute_index(), 0);
  EXPECT_EQ(SimTime::Seconds(60).minute_index(), 1);
  EXPECT_EQ(SimTime::Hours(1).minute_index(), 60);
}

TEST(SimTimeTest, ToStringFormatsHms) {
  EXPECT_EQ((SimTime::Hours(2) + SimTime::Minutes(3) + SimTime::Seconds(4))
                .ToString(),
            "02:03:04");
}

TEST(SimTimeTest, MaxIsLargerThanAnyExperimentHorizon) {
  EXPECT_GT(SimTime::Max(), SimTime::Hours(24 * 365 * 100));
}

}  // namespace
}  // namespace ampere
