#include "src/workload/arrival_process.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/stats/descriptive.h"

namespace ampere {
namespace {

ArrivalProcessParams FlatParams(double rate) {
  ArrivalProcessParams p;
  p.base_rate_per_min = rate;
  p.diurnal_amplitude = 0.0;
  p.ar_sigma = 0.0;
  p.burst_prob = 0.0;
  return p;
}

TEST(ArrivalProcessTest, FlatRateProducesExpectedMeanCount) {
  ArrivalProcess proc(FlatParams(200.0), Rng(1));
  double total = 0.0;
  const int minutes = 2000;
  for (int m = 0; m < minutes; ++m) {
    total += static_cast<double>(
        proc.SampleMinute(SimTime::Minutes(m)).size());
  }
  EXPECT_NEAR(total / minutes, 200.0, 2.0);
}

TEST(ArrivalProcessTest, OffsetsWithinMinuteAndSorted) {
  ArrivalProcess proc(FlatParams(500.0), Rng(2));
  auto offsets = proc.SampleMinute(SimTime::Minutes(10));
  ASSERT_FALSE(offsets.empty());
  SimTime prev;
  for (SimTime t : offsets) {
    EXPECT_GE(t, SimTime());
    EXPECT_LT(t, SimTime::Minutes(1));
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(ArrivalProcessTest, DiurnalProfilePeaksAtConfiguredHour) {
  ArrivalProcessParams p = FlatParams(100.0);
  p.diurnal_amplitude = 0.3;
  p.peak_hour = 14.0;
  ArrivalProcess proc(p, Rng(3));
  double rate_peak = proc.CurrentRatePerMin(SimTime::Hours(14));
  double rate_trough = proc.CurrentRatePerMin(SimTime::Hours(2));
  EXPECT_NEAR(rate_peak, 130.0, 1e-9);
  EXPECT_NEAR(rate_trough, 70.0, 1.0);
  EXPECT_GT(rate_peak, rate_trough);
}

TEST(ArrivalProcessTest, ArModulationWandersButStaysCentered) {
  ArrivalProcessParams p = FlatParams(100.0);
  p.ar_rho = 0.95;
  p.ar_sigma = 0.02;
  ArrivalProcess proc(p, Rng(4));
  OnlineStats counts;
  for (int m = 0; m < 5000; ++m) {
    counts.Add(static_cast<double>(
        proc.SampleMinute(SimTime::Minutes(m)).size()));
  }
  EXPECT_NEAR(counts.mean(), 100.0, 4.0);
  // AR modulation inflates variance beyond pure Poisson (~100).
  EXPECT_GT(counts.variance(), 110.0);
}

TEST(ArrivalProcessTest, BurstsRaiseTailCounts) {
  ArrivalProcessParams p = FlatParams(100.0);
  p.burst_prob = 0.05;
  p.burst_factor = 2.0;
  ArrivalProcess proc(p, Rng(5));
  int high_minutes = 0;
  const int minutes = 4000;
  for (int m = 0; m < minutes; ++m) {
    // With bursts, some minutes should see ~2x the base rate; 160 is > 5
    // sigma for a Poisson(100), so only burst minutes land here.
    if (proc.SampleMinute(SimTime::Minutes(m)).size() > 160) {
      ++high_minutes;
    }
  }
  double frac = static_cast<double>(high_minutes) / minutes;
  EXPECT_NEAR(frac, 0.05, 0.02);
}

TEST(ArrivalProcessTest, ZeroRateProducesNoArrivals) {
  ArrivalProcess proc(FlatParams(0.0), Rng(6));
  EXPECT_TRUE(proc.SampleMinute(SimTime()).empty());
}

}  // namespace
}  // namespace ampere
