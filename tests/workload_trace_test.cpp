#include "src/workload/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "src/common/check.h"
#include "src/sched/scheduler.h"

namespace ampere {
namespace {

std::vector<TraceRecord> SmallTrace() {
  return {
      {0.5, 3.0, 2.0, 4.0, -1},
      {1.0, 9.0, 1.0, 2.0, 0},
      {2.5, 0.5, 4.0, 8.0, 1},
  };
}

TEST(TraceCsvTest, RoundTripPreservesRecords) {
  std::ostringstream out;
  WriteJobTrace(out, SmallTrace());
  std::istringstream in(out.str());
  auto trace = ReadJobTrace(in);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_DOUBLE_EQ(trace[0].submit_minutes, 0.5);
  EXPECT_DOUBLE_EQ(trace[1].duration_minutes, 9.0);
  EXPECT_DOUBLE_EQ(trace[2].cpu_cores, 4.0);
  EXPECT_EQ(trace[0].row_affinity, -1);
  EXPECT_EQ(trace[2].row_affinity, 1);
}

TEST(TraceCsvTest, RejectsBadHeader) {
  std::istringstream in("submit,duration\n1,2\n");
  EXPECT_THROW(ReadJobTrace(in), CheckFailure);
}

TEST(TraceCsvTest, RejectsTooFewFields) {
  std::istringstream in(
      "submit_min,duration_min,cpu_cores,memory_gb,row\n1.0,2.0,1.0\n");
  EXPECT_THROW(ReadJobTrace(in), CheckFailure);
}

TEST(TraceCsvTest, RejectsNonNumeric) {
  std::istringstream in(
      "submit_min,duration_min,cpu_cores,memory_gb,row\n1.0,x,1.0,2.0,-1\n");
  EXPECT_THROW(ReadJobTrace(in), CheckFailure);
}

TEST(TraceCsvTest, RejectsOutOfRange) {
  std::istringstream in(
      "submit_min,duration_min,cpu_cores,memory_gb,row\n1.0,0.0,1.0,2.0,-1\n");
  EXPECT_THROW(ReadJobTrace(in), CheckFailure);
}

TEST(TraceCsvTest, SkipsEmptyLines) {
  std::istringstream in(
      "submit_min,duration_min,cpu_cores,memory_gb,row\n\n1.0,2.0,1.0,2.0,-1"
      "\n\n");
  EXPECT_EQ(ReadJobTrace(in).size(), 1u);
}

TEST(TraceCsvTest, FileRoundTrip) {
  const char* path = "/tmp/ampere_trace_test.csv";
  WriteJobTraceFile(path, SmallTrace());
  auto trace = ReadJobTraceFile(path);
  EXPECT_EQ(trace.size(), 3u);
}

TEST(SampleTraceTest, MatchesWorkloadStatistics) {
  BatchWorkloadParams params;
  params.arrivals.base_rate_per_min = 50.0;
  params.arrivals.diurnal_amplitude = 0.0;
  params.arrivals.ar_sigma = 0.0;
  params.arrivals.burst_prob = 0.0;
  auto trace = SampleTrace(params, SimTime::Hours(2), Rng(3));
  // ~50 jobs/min * 120 min.
  EXPECT_NEAR(static_cast<double>(trace.size()), 6000.0, 300.0);
  double mean_duration = 0.0;
  for (const TraceRecord& r : trace) {
    EXPECT_GE(r.submit_minutes, 0.0);
    EXPECT_LT(r.submit_minutes, 120.0);
    mean_duration += r.duration_minutes;
  }
  mean_duration /= static_cast<double>(trace.size());
  EXPECT_NEAR(mean_duration, 9.1, 0.5);
}

TEST(SampleTraceTest, CarriesRowAffinity) {
  BatchWorkloadParams params;
  params.arrivals.base_rate_per_min = 10.0;
  params.row_affinity = RowId(2);
  auto trace = SampleTrace(params, SimTime::Minutes(10), Rng(4));
  ASSERT_FALSE(trace.empty());
  for (const TraceRecord& r : trace) {
    EXPECT_EQ(r.row_affinity, 2);
  }
}

TEST(TraceWorkloadTest, ReplaysIntoScheduler) {
  Simulation sim;
  TopologyConfig topo;
  topo.num_rows = 2;
  topo.racks_per_row = 1;
  topo.servers_per_rack = 4;
  DataCenter dc(topo, &sim);
  Scheduler scheduler(&dc, SchedulerConfig{}, Rng(5));
  JobIdAllocator ids;
  TraceWorkload workload(SmallTrace(), &sim, &scheduler, &ids);
  EXPECT_EQ(workload.jobs_total(), 3u);
  workload.Start();
  sim.RunUntil(SimTime::Minutes(0.75));
  EXPECT_EQ(workload.jobs_submitted(), 1u);
  sim.RunUntil(SimTime::Minutes(3.0));
  EXPECT_EQ(workload.jobs_submitted(), 3u);
  EXPECT_EQ(scheduler.jobs_placed(), 3u);
  // Row affinities respected.
  EXPECT_EQ(scheduler.placements_in_row(RowId(1)), 1u);
}

TEST(TraceWorkloadTest, ReplayIsDeterministicAndEquivalentToGenerator) {
  // A captured trace replayed through the scheduler produces the same
  // placements as any identical trace replay.
  BatchWorkloadParams params;
  params.arrivals.base_rate_per_min = 20.0;
  auto trace = SampleTrace(params, SimTime::Hours(1), Rng(6));

  auto run = [&trace]() {
    Simulation sim;
    TopologyConfig topo;
    topo.num_rows = 1;
    topo.racks_per_row = 2;
    topo.servers_per_rack = 10;
    DataCenter dc(topo, &sim);
    Scheduler scheduler(&dc, SchedulerConfig{}, Rng(7));
    JobIdAllocator ids;
    TraceWorkload workload(trace, &sim, &scheduler, &ids);
    workload.Start();
    sim.RunUntil(SimTime::Hours(3));
    return std::pair{scheduler.jobs_placed(), dc.total_power_watts()};
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

TEST(TraceWorkloadTest, DoubleStartThrows) {
  Simulation sim;
  TopologyConfig topo;
  topo.num_rows = 1;
  topo.racks_per_row = 1;
  topo.servers_per_rack = 2;
  DataCenter dc(topo, &sim);
  Scheduler scheduler(&dc, SchedulerConfig{}, Rng(8));
  JobIdAllocator ids;
  TraceWorkload workload(SmallTrace(), &sim, &scheduler, &ids);
  workload.Start();
  EXPECT_THROW(workload.Start(), CheckFailure);
}

}  // namespace
}  // namespace ampere
