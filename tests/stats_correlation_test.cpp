#include "src/stats/correlation.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"

namespace ampere {
namespace {

TEST(PearsonTest, PerfectPositive) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{2.0, 4.0, 6.0};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectNegative) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{9.0, 6.0, 3.0};
  EXPECT_NEAR(PearsonCorrelation(x, y), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSeriesGivesZero) {
  std::vector<double> x{5.0, 5.0, 5.0};
  std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(PearsonTest, IndependentSeriesNearZero) {
  Rng rng(3);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng.StandardNormal());
    y.push_back(rng.StandardNormal());
  }
  EXPECT_NEAR(PearsonCorrelation(x, y), 0.0, 0.02);
}

TEST(PearsonTest, InvariantToAffineTransform) {
  Rng rng(4);
  std::vector<double> x;
  std::vector<double> y;
  std::vector<double> y_scaled;
  for (int i = 0; i < 1000; ++i) {
    double a = rng.StandardNormal();
    double b = a + rng.Normal(0.0, 0.5);
    x.push_back(a);
    y.push_back(b);
    y_scaled.push_back(3.0 * b + 100.0);
  }
  EXPECT_NEAR(PearsonCorrelation(x, y), PearsonCorrelation(x, y_scaled),
              1e-12);
}

TEST(PairwiseTest, UpperTriangleCount) {
  std::vector<std::vector<double>> series{
      {1.0, 2.0, 3.0}, {2.0, 4.0, 6.0}, {3.0, 2.0, 1.0}, {1.0, 3.0, 2.0}};
  auto cors = PairwiseCorrelations(series);
  EXPECT_EQ(cors.size(), 6u);  // C(4,2).
  EXPECT_NEAR(cors[0], 1.0, 1e-12);   // series 0 vs 1.
  EXPECT_NEAR(cors[1], -1.0, 1e-12);  // series 0 vs 2.
}

}  // namespace
}  // namespace ampere
