#include "src/stats/percentile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace ampere {
namespace {

TEST(PercentileTest, SingleElement) {
  std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 7.0);
}

TEST(PercentileTest, InterpolatesBetweenOrderStatistics) {
  std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 25.0);
  EXPECT_NEAR(Percentile(v, 1.0 / 3.0), 20.0, 1e-12);
}

TEST(PercentileTest, UnsortedInputHandled) {
  std::vector<double> v{40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 25.0);
}

TEST(PercentileTest, EmptyThrows) {
  EXPECT_THROW(Percentile({}, 0.5), CheckFailure);
}

TEST(PercentileTest, OutOfRangeQuantileThrows) {
  std::vector<double> v{1.0};
  EXPECT_THROW(Percentile(v, -0.1), CheckFailure);
  EXPECT_THROW(Percentile(v, 1.1), CheckFailure);
}

TEST(EmpiricalCdfTest, EvaluateCountsFraction) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.Evaluate(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.Evaluate(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.Evaluate(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.Evaluate(100.0), 1.0);
}

TEST(EmpiricalCdfTest, QuantileIsInverseOfEvaluate) {
  Rng rng(9);
  std::vector<double> sample;
  for (int i = 0; i < 5000; ++i) {
    sample.push_back(rng.Normal(10.0, 2.0));
  }
  EmpiricalCdf cdf(sample);
  for (double q : {0.1, 0.25, 0.5, 0.9, 0.99}) {
    double x = cdf.Quantile(q);
    EXPECT_NEAR(cdf.Evaluate(x), q, 0.01);
  }
}

TEST(EmpiricalCdfTest, PlotPointsSpanRangeAndAreMonotone) {
  EmpiricalCdf cdf({5.0, 1.0, 3.0, 2.0, 4.0});
  auto points = cdf.PlotPoints(11);
  ASSERT_EQ(points.size(), 11u);
  EXPECT_DOUBLE_EQ(points.front().first, 1.0);
  EXPECT_DOUBLE_EQ(points.back().first, 5.0);
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].second, points[i - 1].second);
  }
}

// Property sweep: quantiles of uniform samples track the theoretical value.
class PercentileSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(PercentileSweepTest, UniformSampleQuantileNearTheoretical) {
  double q = GetParam();
  Rng rng(1234);
  std::vector<double> v;
  for (int i = 0; i < 40000; ++i) {
    v.push_back(rng.NextDouble());
  }
  EXPECT_NEAR(Percentile(v, q), q, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, PercentileSweepTest,
                         ::testing::Values(0.05, 0.25, 0.5, 0.75, 0.95,
                                           0.995));

}  // namespace
}  // namespace ampere
