// Persistent cold tier: segment round-trips, spill policy, stitched reads,
// the OpenExisting instant-restart path, and the full corruption matrix
// (truncation, bad magic/CRC, version skew, mid-write kill, manifest
// damage). Readers must return structured StoreStatus errors on malformed
// bytes — never throw, never CHECK — mirroring the workload-trace contract.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/time.h"
#include "src/telemetry/cold_store.h"
#include "src/telemetry/mmap_segment.h"
#include "src/telemetry/timeseries_db.h"

namespace ampere {
namespace {

// Fresh scratch directory per test (removed up front so reruns start clean).
std::string ScratchDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "ampere_cold_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<TimePoint> MakePoints(size_t n, int64_t start_us = 1000,
                                  int64_t step_us = 60'000'000) {
  std::vector<TimePoint> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    points.push_back(TimePoint{
        SimTime::Micros(start_us + static_cast<int64_t>(i) * step_us),
        0.25 + static_cast<double>(i) * 1.5});
  }
  return points;
}

std::vector<TimePoint> Materialized(const TimeSeriesDb& db,
                                    std::string_view series) {
  return db.SeriesStitched(series).Materialize();
}

void ExpectSamePoints(const std::vector<TimePoint>& got,
                      const std::vector<TimePoint>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].time.micros(), want[i].time.micros()) << "index " << i;
    // Bit-exact, not approximately-equal: the format stores raw doubles.
    EXPECT_EQ(std::memcmp(&got[i].value, &want[i].value, sizeof(double)), 0)
        << "index " << i;
  }
}

// --- Segment round-trip ---------------------------------------------------

TEST(MmapSegment, RoundTripsSamplesBitExactly) {
  const std::string dir = ScratchDir("segment_roundtrip");
  const std::string path = dir + "/seg.seg";
  const uint64_t key = StoreSeriesKey("power/total");
  auto writer = SegmentWriter::Create(path, key, 4, 1024);
  ASSERT_NE(writer, nullptr);

  const std::vector<TimePoint> points = MakePoints(100);
  EXPECT_EQ(writer->AppendBatch(points), points.size());
  EXPECT_EQ(writer->count(), points.size());
  EXPECT_TRUE(writer->Seal().ok());
  EXPECT_TRUE(writer->sealed());

  auto opened = SegmentReader::Open(path);
  ASSERT_TRUE(opened.status.ok()) << opened.status.message;
  SegmentReader& reader = *opened.reader;
  EXPECT_EQ(reader.count(), points.size());
  EXPECT_EQ(reader.series_key(), key);
  EXPECT_EQ(reader.first_time().micros(), points.front().time.micros());
  EXPECT_EQ(reader.last_time().micros(), points.back().time.micros());
  ASSERT_EQ(reader.deltas().size(), points.size());
  EXPECT_EQ(reader.deltas()[0], 0);
  int64_t t = reader.first_time().micros();
  for (size_t i = 0; i < points.size(); ++i) {
    if (i > 0) {
      t += reader.deltas()[i];
    }
    EXPECT_EQ(t, points[i].time.micros());
    EXPECT_EQ(std::memcmp(&reader.values()[i], &points[i].value,
                          sizeof(double)),
              0);
  }
}

TEST(MmapSegment, GrowsByDoublingAndReportsFullAtCap) {
  const std::string dir = ScratchDir("segment_growth");
  const std::string path = dir + "/seg.seg";
  auto writer = SegmentWriter::Create(path, 7, 2, 16);
  ASSERT_NE(writer, nullptr);
  const std::vector<TimePoint> points = MakePoints(50);
  // Only max_capacity samples fit; the rest are refused, not dropped
  // silently.
  EXPECT_EQ(writer->AppendBatch(points), 16u);
  EXPECT_EQ(writer->remaining(), 0u);
  EXPECT_EQ(writer->AppendBatch(std::span(points).subspan(16)), 0u);
  EXPECT_TRUE(writer->Seal().ok());
  auto opened = SegmentReader::Open(path);
  ASSERT_TRUE(opened.status.ok()) << opened.status.message;
  EXPECT_EQ(opened.reader->count(), 16u);
}

TEST(MmapSegment, SealPacksFileToCommittedSamples) {
  const std::string dir = ScratchDir("segment_pack");
  const std::string path = dir + "/seg.seg";
  auto writer = SegmentWriter::Create(path, 7, 1024, 4096);
  ASSERT_NE(writer, nullptr);
  writer->AppendBatch(MakePoints(10));
  ASSERT_TRUE(writer->Seal().ok());
  // Sealed size is exactly header + 16 bytes per committed sample — the
  // pre-sized capacity does not survive on disk.
  EXPECT_EQ(std::filesystem::file_size(path),
            kSegmentHeaderSize + 10 * kSegmentSampleStride);
}

// --- Corruption matrix ----------------------------------------------------

class SegmentCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ScratchDir("segment_corrupt");
    path_ = dir_ + "/seg.seg";
    auto writer = SegmentWriter::Create(path_, StoreSeriesKey("s"), 4, 256);
    ASSERT_NE(writer, nullptr);
    writer->AppendBatch(MakePoints(32));
    ASSERT_TRUE(writer->Seal().ok());
  }

  std::vector<uint8_t> ReadFile() {
    std::ifstream in(path_, std::ios::binary);
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(in), {});
  }

  void WriteFile(const std::vector<uint8_t>& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  // Patches raw header fields and recomputes both CRCs so validation
  // reaches the semantic checks behind them.
  void PatchHeaderAndFixCrcs(std::vector<uint8_t>& bytes, size_t offset,
                             const void* value, size_t len) {
    std::memcpy(bytes.data() + offset, value, len);
    SegmentHeader header;
    std::memcpy(&header, bytes.data(), sizeof(header));
    const size_t payload =
        static_cast<size_t>(header.count) * kSegmentSampleStride;
    if (bytes.size() >= kSegmentHeaderSize + payload) {
      const uint8_t* deltas = bytes.data() + kSegmentHeaderSize;
      const uint8_t* values =
          deltas + static_cast<size_t>(header.capacity) * sizeof(int64_t);
      uint32_t crc = StoreCrc32(
          deltas, static_cast<size_t>(header.count) * sizeof(int64_t));
      crc = StoreCrc32(
          values, static_cast<size_t>(header.count) * sizeof(double), crc);
      header.data_crc = crc;
    }
    header.header_crc = StoreCrc32(&header, kSegmentHeaderSize - 4);
    std::memcpy(bytes.data(), &header, sizeof(header));
  }

  StoreError OpenError() {
    auto opened = SegmentReader::Open(path_);
    EXPECT_FALSE(opened.status.ok());
    EXPECT_EQ(opened.reader, nullptr);
    EXPECT_FALSE(opened.status.message.empty());
    return opened.status.error;
  }

  std::string dir_;
  std::string path_;
};

TEST_F(SegmentCorruptionTest, MissingFileIsIo) {
  std::filesystem::remove(path_);
  EXPECT_EQ(OpenError(), StoreError::kIo);
}

TEST_F(SegmentCorruptionTest, TruncatedHeaderIsTruncated) {
  auto bytes = ReadFile();
  bytes.resize(32);
  WriteFile(bytes);
  EXPECT_EQ(OpenError(), StoreError::kTruncated);
}

TEST_F(SegmentCorruptionTest, TruncatedPayloadIsTruncated) {
  auto bytes = ReadFile();
  bytes.resize(bytes.size() - 8);
  WriteFile(bytes);
  EXPECT_EQ(OpenError(), StoreError::kTruncated);
}

TEST_F(SegmentCorruptionTest, BadMagicIsBadMagic) {
  auto bytes = ReadFile();
  bytes[0] = 'X';
  WriteFile(bytes);
  EXPECT_EQ(OpenError(), StoreError::kBadMagic);
}

TEST_F(SegmentCorruptionTest, FlippedHeaderByteIsBadCrc) {
  auto bytes = ReadFile();
  bytes[24] ^= 0xff;  // count field, CRC not recomputed.
  WriteFile(bytes);
  EXPECT_EQ(OpenError(), StoreError::kBadCrc);
}

TEST_F(SegmentCorruptionTest, FlippedPayloadByteIsBadCrc) {
  auto bytes = ReadFile();
  bytes[bytes.size() - 1] ^= 0xff;
  WriteFile(bytes);
  EXPECT_EQ(OpenError(), StoreError::kBadCrc);
}

TEST_F(SegmentCorruptionTest, FutureVersionIsVersionSkew) {
  auto bytes = ReadFile();
  const uint32_t version = kSegmentVersion + 1;
  PatchHeaderAndFixCrcs(bytes, 8, &version, sizeof(version));
  WriteFile(bytes);
  EXPECT_EQ(OpenError(), StoreError::kVersionSkew);
}

TEST_F(SegmentCorruptionTest, CountPastCapacityIsCorruptLength) {
  auto bytes = ReadFile();
  uint64_t count;
  std::memcpy(&count, bytes.data() + 24, sizeof(count));
  const uint64_t absurd = count + 1'000'000;
  PatchHeaderAndFixCrcs(bytes, 24, &absurd, sizeof(absurd));
  WriteFile(bytes);
  EXPECT_EQ(OpenError(), StoreError::kCorruptLength);
}

TEST_F(SegmentCorruptionTest, NonzeroFirstDeltaIsBadRecord) {
  auto bytes = ReadFile();
  const int64_t bad = 5;
  PatchHeaderAndFixCrcs(bytes, kSegmentHeaderSize, &bad, sizeof(bad));
  WriteFile(bytes);
  EXPECT_EQ(OpenError(), StoreError::kBadRecord);
}

TEST_F(SegmentCorruptionTest, NegativeDeltaIsBadRecord) {
  auto bytes = ReadFile();
  const int64_t bad = -1;
  PatchHeaderAndFixCrcs(bytes, kSegmentHeaderSize + sizeof(int64_t), &bad,
                        sizeof(bad));
  WriteFile(bytes);
  EXPECT_EQ(OpenError(), StoreError::kBadRecord);
}

TEST_F(SegmentCorruptionTest, LastTimeMismatchIsBadRecord) {
  auto bytes = ReadFile();
  int64_t last;
  std::memcpy(&last, bytes.data() + 48, sizeof(last));
  const int64_t wrong = last + 1;
  PatchHeaderAndFixCrcs(bytes, 48, &wrong, sizeof(wrong));
  WriteFile(bytes);
  EXPECT_EQ(OpenError(), StoreError::kBadRecord);
}

TEST_F(SegmentCorruptionTest, MidWriteKillIsTruncated) {
  // An abandoned writer leaves the unsealed header from Create on disk —
  // exactly what a kill between Create and Seal leaves behind.
  const std::string path = dir_ + "/killed.seg";
  {
    auto writer = SegmentWriter::Create(path, 7, 4, 64);
    ASSERT_NE(writer, nullptr);
    writer->AppendBatch(MakePoints(3));
    // No Seal: destructor syncs the mapping but never finalizes the header.
  }
  auto opened = SegmentReader::Open(path);
  EXPECT_FALSE(opened.status.ok());
  EXPECT_EQ(opened.status.error, StoreError::kTruncated);
}

// --- Cold store: spill policy + stitched reads ----------------------------

TEST(ColdStore, SpillKeepsHotTierUnderBudgetAndHistoryLossless) {
  const std::string dir = ScratchDir("spill_budget");
  ColdStoreConfig config;
  config.dir = dir;
  config.segment_samples = 16;
  auto created = ColdStore::Create(config);
  ASSERT_TRUE(created.status.ok()) << created.status.message;

  TimeSeriesDb db;
  db.AttachColdStore(created.store.get(), 8);
  EXPECT_TRUE(db.spill_enabled());

  const std::vector<TimePoint> points = MakePoints(100);
  const SeriesId id = db.Intern("power/total");
  for (const TimePoint& point : points) {
    db.Append(id, point.time, point.value);
    EXPECT_LE(db.Series(id).size(), 8u);  // Budget holds after every append.
  }
  EXPECT_GT(db.samples_spilled(), 0u);
  EXPECT_EQ(db.samples_spilled() + db.Series(id).size(), points.size());
  EXPECT_EQ(db.TotalPoints(), points.size());

  // Latest stays a hot-only read; full history is stitched and lossless.
  ASSERT_TRUE(db.Latest(id).has_value());
  EXPECT_EQ(db.Latest(id)->time.micros(), points.back().time.micros());
  ExpectSamePoints(Materialized(db, "power/total"), points);

  // The deprecated copying shims keep seeing the full spilled history.
  EXPECT_EQ(db.Values("power/total").size(), points.size());
  EXPECT_EQ(db.Query("power/total", SimTime(), SimTime::Max()).size(),
            points.size());
}

TEST(ColdStore, QueryStitchedSlicesRangesAcrossTiers) {
  const std::string dir = ScratchDir("stitched_range");
  ColdStoreConfig config;
  config.dir = dir;
  config.segment_samples = 8;
  auto created = ColdStore::Create(config);
  ASSERT_TRUE(created.status.ok()) << created.status.message;

  TimeSeriesDb spilled;
  spilled.AttachColdStore(created.store.get(), 4);
  TimeSeriesDb ram;  // The reference answer.
  const std::vector<TimePoint> points = MakePoints(64);
  for (const TimePoint& point : points) {
    spilled.Append("s", point.time, point.value);
    ram.Append("s", point.time, point.value);
  }
  // Slice at every third boundary, including ranges fully inside the cold
  // tier, spanning the seam, and fully hot.
  for (size_t lo = 0; lo < points.size(); lo += 3) {
    for (size_t hi = lo; hi < points.size(); hi += 7) {
      const SimTime from = points[lo].time;
      const SimTime to = points[hi].time;
      const auto got = spilled.QueryStitched("s", from, to).Materialize();
      const auto want = ram.Query("s", from, to);
      ExpectSamePoints(got, want);
    }
  }
}

TEST(ColdStore, AppendBatchSpillsLikePointAppends) {
  const std::string dir = ScratchDir("batch_spill");
  ColdStoreConfig config;
  config.dir = dir;
  auto created = ColdStore::Create(config);
  ASSERT_TRUE(created.status.ok()) << created.status.message;

  TimeSeriesDb db;
  db.AttachColdStore(created.store.get(), 8);
  const SeriesId id = db.Intern("s");
  const std::vector<TimePoint> points = MakePoints(90);
  // Batches larger and smaller than the budget, including one giant batch.
  db.AppendBatch(id, std::span(points).subspan(0, 50));
  EXPECT_LE(db.Series(id).size(), 50u);
  db.AppendBatch(id, std::span(points).subspan(50, 3));
  db.AppendBatch(id, std::span(points).subspan(53));
  ExpectSamePoints(Materialized(db, "s"), points);
}

TEST(ColdStore, ReservePointsClampsToHotBudget) {
  const std::string dir = ScratchDir("reserve_clamp");
  auto created = ColdStore::Create(ColdStoreConfig{dir, 64, 16});
  ASSERT_TRUE(created.status.ok()) << created.status.message;
  TimeSeriesDb db;
  db.AttachColdStore(created.store.get(), 32);
  const SeriesId id = db.Intern("s");
  db.ReservePoints(id, 1'000'000);  // Must not reserve a million slots.
  for (const TimePoint& point : MakePoints(100)) {
    db.Append(id, point.time, point.value);
  }
  EXPECT_LE(db.Series(id).size(), 32u);
}

// --- Instant restart ------------------------------------------------------

TEST(ColdStore, OpenExistingServesIdenticalBytesWithoutResimulating) {
  const std::string dir = ScratchDir("restart");
  const std::vector<TimePoint> points = MakePoints(200);
  uint64_t cold_count = 0;
  {
    ColdStoreConfig config;
    config.dir = dir;
    config.segment_samples = 32;
    auto created = ColdStore::Create(config);
    ASSERT_TRUE(created.status.ok()) << created.status.message;
    TimeSeriesDb db;
    db.AttachColdStore(created.store.get(), 16);
    for (const TimePoint& point : points) {
      db.Append("power/rack0", point.time, point.value);
    }
    cold_count = created.store->SamplesForSeries("power/rack0");
    ASSERT_TRUE(created.store->Flush().ok());
  }  // Store destroyed: everything sealed + manifest written.

  auto reopened = ColdStore::OpenExisting(ColdStoreConfig{dir});
  ASSERT_TRUE(reopened.status.ok()) << reopened.status.message;
  EXPECT_EQ(reopened.store->SamplesForSeries("power/rack0"), cold_count);

  TimeSeriesDb restarted;
  restarted.AttachColdStore(reopened.store.get(), 16);
  // The restart path interned the store's series: visible by name with the
  // spilled prefix of the original history, bit-exact.
  EXPECT_EQ(restarted.SeriesNames(),
            std::vector<std::string>{"power/rack0"});
  const auto after = Materialized(restarted, "power/rack0");
  ExpectSamePoints(after,
                   std::vector<TimePoint>(
                       points.begin(),
                       points.begin() + static_cast<ptrdiff_t>(cold_count)));

  // And the reopened store accepts further appends (a new process
  // continuing the run).
  restarted.Append("power/rack0", SimTime::Hours(1000), 42.0);
  EXPECT_EQ(restarted.TotalPoints(), cold_count + 1);
}

TEST(ColdStore, FlushIsDurableWhileStoreStaysLive) {
  const std::string dir = ScratchDir("flush_live");
  auto created = ColdStore::Create(ColdStoreConfig{dir});
  ASSERT_TRUE(created.status.ok()) << created.status.message;
  const std::vector<TimePoint> points = MakePoints(20);
  created.store->AppendBatch("s", points);
  ASSERT_TRUE(created.store->Flush().ok());
  // A second process (here: a second store object) can already read
  // everything the first one flushed.
  auto reopened = ColdStore::OpenExisting(ColdStoreConfig{dir});
  ASSERT_TRUE(reopened.status.ok()) << reopened.status.message;
  EXPECT_EQ(reopened.store->SamplesForSeries("s"), points.size());
  // The live store keeps serving queries after its Flush too.
  std::vector<ColdPiece> pieces;
  created.store->QueryPieces("s", SimTime(), SimTime::Max(), &pieces);
  size_t total = 0;
  for (const ColdPiece& piece : pieces) {
    total += piece.size();
  }
  EXPECT_EQ(total, points.size());
}

// --- Manifest corruption matrix -------------------------------------------

class ManifestCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ScratchDir("manifest_corrupt");
    auto created = ColdStore::Create(ColdStoreConfig{dir_, 16, 4});
    ASSERT_TRUE(created.status.ok()) << created.status.message;
    created.store->AppendBatch("power/total", MakePoints(40));
    ASSERT_TRUE(created.store->Flush().ok());
    manifest_ = dir_ + "/manifest.ampts";
  }

  std::string ReadManifest() {
    std::ifstream in(manifest_, std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(in)), {});
    return text;
  }

  void WriteManifest(const std::string& text) {
    std::ofstream out(manifest_, std::ios::binary | std::ios::trunc);
    out << text;
  }

  StoreError OpenError() {
    auto opened = ColdStore::OpenExisting(ColdStoreConfig{dir_});
    EXPECT_FALSE(opened.status.ok());
    EXPECT_EQ(opened.store, nullptr);
    EXPECT_FALSE(opened.status.message.empty());
    return opened.status.error;
  }

  std::string dir_;
  std::string manifest_;
};

TEST_F(ManifestCorruptionTest, MissingManifestIsIo) {
  std::filesystem::remove(manifest_);
  EXPECT_EQ(OpenError(), StoreError::kIo);
}

TEST_F(ManifestCorruptionTest, EmptyManifestIsBadMagic) {
  WriteManifest("");
  EXPECT_EQ(OpenError(), StoreError::kBadMagic);
}

TEST_F(ManifestCorruptionTest, WrongMagicIsBadMagic) {
  WriteManifest("NOTAMANI 1\nend 0\n");
  EXPECT_EQ(OpenError(), StoreError::kBadMagic);
}

TEST_F(ManifestCorruptionTest, FutureVersionIsVersionSkew) {
  std::string text = ReadManifest();
  text.replace(text.find(" 1\n"), 3, " 2\n");
  WriteManifest(text);
  EXPECT_EQ(OpenError(), StoreError::kVersionSkew);
}

TEST_F(ManifestCorruptionTest, MissingEndMarkerIsBadManifest) {
  std::string text = ReadManifest();
  text = text.substr(0, text.find("end "));
  WriteManifest(text);
  EXPECT_EQ(OpenError(), StoreError::kBadManifest);
}

TEST_F(ManifestCorruptionTest, EndCountMismatchIsBadManifest) {
  std::string text = ReadManifest();
  const size_t at = text.find("end ");
  ASSERT_NE(at, std::string::npos);
  text = text.substr(0, at) + "end 99\n";
  WriteManifest(text);
  EXPECT_EQ(OpenError(), StoreError::kBadManifest);
}

TEST_F(ManifestCorruptionTest, ContentAfterEndIsBadManifest) {
  WriteManifest(ReadManifest() + "trailing garbage\n");
  EXPECT_EQ(OpenError(), StoreError::kBadManifest);
}

TEST_F(ManifestCorruptionTest, MalformedSegLineIsBadManifest) {
  std::string text = ReadManifest();
  const size_t at = text.find("seg ");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 4, "segX");
  WriteManifest(text);
  EXPECT_EQ(OpenError(), StoreError::kBadManifest);
}

TEST_F(ManifestCorruptionTest, KeyNameMismatchIsBadManifest) {
  std::string text = ReadManifest();
  const size_t at = text.find("power/total");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 11, "power/other");
  WriteManifest(text);
  EXPECT_EQ(OpenError(), StoreError::kBadManifest);
}

TEST_F(ManifestCorruptionTest, CountDisagreementIsBadManifest) {
  // The first seg line declares 16 samples (segment_samples = 16); claim 15.
  std::string text = ReadManifest();
  const size_t at = text.find("seg 16 ");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 7, "seg 15 ");
  WriteManifest(text);
  EXPECT_EQ(OpenError(), StoreError::kBadManifest);
}

TEST_F(ManifestCorruptionTest, MissingSegmentFileIsIo) {
  // Remove the first listed segment file; the manifest now points at
  // nothing.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() == ".seg") {
      std::filesystem::remove(entry.path());
      break;
    }
  }
  EXPECT_EQ(OpenError(), StoreError::kIo);
}

TEST_F(ManifestCorruptionTest, CorruptListedSegmentSurfacesSegmentError) {
  // Flip a payload byte in one listed segment: OpenExisting must fail with
  // the segment's own structured error, prefixed with the file name.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() != ".seg") {
      continue;
    }
    std::fstream file(entry.path(),
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(-1, std::ios::end);
    char byte;
    file.seekg(-1, std::ios::end);
    file.get(byte);
    file.seekp(-1, std::ios::end);
    file.put(static_cast<char>(byte ^ 0x1));
    break;
  }
  auto opened = ColdStore::OpenExisting(ColdStoreConfig{dir_});
  ASSERT_FALSE(opened.status.ok());
  EXPECT_EQ(opened.status.error, StoreError::kBadCrc);
  EXPECT_NE(opened.status.message.find("segment "), std::string::npos);
}

}  // namespace
}  // namespace ampere
