// DecisionJournal: ring-buffer eviction, sequence addressing, range query,
// CSV/JSON round-trip, drift statistics, and the audit cross-check — journal
// counts match GroupReport violations/u on a small closed loop.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/obs/journal.h"

namespace ampere {
namespace obs {
namespace {

DecisionRecord MakeRecord(double minute, const std::string& domain,
                          double p, double u) {
  DecisionRecord r;
  r.time = SimTime::Minutes(minute);
  r.domain = domain;
  r.observed_watts = p * 1000.0;
  r.budget_watts = 1000.0;
  r.normalized_power = p;
  r.et = 0.02;
  r.violation = p > 1.0;
  r.predicted_next = p + 0.02 - 0.05 * u;
  r.u = u;
  r.cap_engaged = u >= 0.5;
  r.n_servers = 100;
  r.n_freeze = static_cast<uint32_t>(u * 100.0);
  r.pool_size = r.n_freeze;
  r.p_threshold = 200.0;
  return r;
}

TEST(DecisionJournalTest, AppendAssignsMonotonicSeqs) {
  DecisionJournal journal(8);
  EXPECT_EQ(journal.Append(MakeRecord(1, "row", 0.9, 0.0)), 0u);
  EXPECT_EQ(journal.Append(MakeRecord(2, "row", 0.95, 0.1)), 1u);
  EXPECT_EQ(journal.size(), 2u);
  EXPECT_EQ(journal.total_appended(), 2u);
  ASSERT_NE(journal.FindBySeq(0), nullptr);
  EXPECT_DOUBLE_EQ(journal.FindBySeq(0)->normalized_power, 0.9);
}

TEST(DecisionJournalTest, RingEvictsOldestAndKeepsSeqAddressing) {
  DecisionJournal journal(4);
  for (int i = 0; i < 10; ++i) {
    journal.Append(MakeRecord(i, "row", 0.9, 0.0));
  }
  EXPECT_EQ(journal.size(), 4u);
  EXPECT_EQ(journal.total_appended(), 10u);
  // Seqs 0..5 are evicted; 6..9 live.
  for (uint64_t seq = 0; seq < 6; ++seq) {
    EXPECT_EQ(journal.FindBySeq(seq), nullptr) << seq;
  }
  for (uint64_t seq = 6; seq < 10; ++seq) {
    const DecisionRecord* r = journal.FindBySeq(seq);
    ASSERT_NE(r, nullptr) << seq;
    EXPECT_EQ(r->seq, seq);
  }
  // Backfilling an evicted record reports failure; a live one succeeds.
  EXPECT_FALSE(journal.SetRealized(2, 0.97));
  EXPECT_TRUE(journal.SetRealized(7, 0.97));
  EXPECT_TRUE(journal.FindBySeq(7)->realized_valid);
}

TEST(DecisionJournalTest, QueryFiltersByTimeRangeAndDomain) {
  DecisionJournal journal(32);
  for (int i = 0; i < 10; ++i) {
    journal.Append(MakeRecord(i, i % 2 == 0 ? "even" : "odd", 0.9, 0.0));
  }
  // [3, 7) minutes, any domain -> minutes 3,4,5,6.
  auto window = journal.Query(SimTime::Minutes(3), SimTime::Minutes(7));
  ASSERT_EQ(window.size(), 4u);
  EXPECT_EQ(window.front().time, SimTime::Minutes(3));
  EXPECT_EQ(window.back().time, SimTime::Minutes(6));
  // Same window, "even" only -> minutes 4, 6.
  auto evens =
      journal.Query(SimTime::Minutes(3), SimTime::Minutes(7), "even");
  ASSERT_EQ(evens.size(), 2u);
  EXPECT_EQ(evens[0].time, SimTime::Minutes(4));
  EXPECT_EQ(evens[1].time, SimTime::Minutes(6));

  auto tail = journal.Tail(3, "odd");
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail.back().time, SimTime::Minutes(9));
  EXPECT_LT(tail.front().time, tail.back().time);  // Oldest first.
}

TEST(DecisionJournalTest, CsvRoundTripIsLossless) {
  DecisionJournal journal(16);
  for (int i = 0; i < 5; ++i) {
    DecisionRecord r =
        MakeRecord(i, "row", 0.9 + 0.031 * i, 0.1 * i);
    r.freeze_ops = static_cast<uint32_t>(i);
    journal.Append(r);
    if (i > 0) {
      journal.SetRealized(static_cast<uint64_t>(i - 1), 0.9 + 0.031 * i);
    }
  }
  std::string csv = journal.ToCsv();
  auto parsed = DecisionJournal::ParseCsv(csv);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 5u);
  auto live = journal.Query(SimTime(), SimTime::Hours(1));
  for (size_t i = 0; i < parsed->size(); ++i) {
    const DecisionRecord& a = live[i];
    const DecisionRecord& b = (*parsed)[i];
    EXPECT_EQ(a.seq, b.seq);
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.domain, b.domain);
    EXPECT_EQ(a.observed_watts, b.observed_watts);  // Bit-exact round trip.
    EXPECT_EQ(a.normalized_power, b.normalized_power);
    EXPECT_EQ(a.predicted_next, b.predicted_next);
    EXPECT_EQ(a.realized_next, b.realized_next);
    EXPECT_EQ(a.realized_valid, b.realized_valid);
    EXPECT_EQ(a.u, b.u);
    EXPECT_EQ(a.n_freeze, b.n_freeze);
    EXPECT_EQ(a.freeze_ops, b.freeze_ops);
  }
  EXPECT_FALSE(DecisionJournal::ParseCsv("not,a,journal\n").has_value());
}

TEST(DecisionJournalTest, JsonExportContainsRecords) {
  DecisionJournal journal(8);
  journal.Append(MakeRecord(1, "row", 1.01, 0.3));
  std::string json = journal.ToJson();
  EXPECT_NE(json.find("\"domain\":\"row\""), std::string::npos);
  EXPECT_NE(json.find("\"violation\":true"), std::string::npos);
  EXPECT_NE(json.find("\"n_servers\":100"), std::string::npos);
}

TEST(DecisionJournalTest, SummarizeAggregatesPerDomain) {
  DecisionJournal journal(32);
  journal.Append(MakeRecord(1, "a", 0.9, 0.0));
  journal.Append(MakeRecord(2, "a", 1.05, 0.5));
  journal.Append(MakeRecord(3, "b", 0.8, 0.0));

  JournalSummary summary = journal.Summarize();
  EXPECT_EQ(summary.records, 3u);
  ASSERT_EQ(summary.domains.size(), 2u);
  const JournalDomainSummary* a = summary.FindDomain("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->ticks, 2u);
  EXPECT_EQ(a->violations, 1u);
  EXPECT_EQ(a->capped_ticks, 1u);
  // u aggregates the realized ratio n_freeze / n_servers.
  EXPECT_DOUBLE_EQ(a->u_mean, (0.0 + 50.0 / 100.0) / 2.0);
  EXPECT_DOUBLE_EQ(a->u_max, 0.5);
  EXPECT_DOUBLE_EQ(a->p_max, 1.05);
  EXPECT_NE(summary.ToJson().find("\"violations\":1"), std::string::npos);
}

TEST(DecisionJournalTest, DriftStatisticsOverResolvedRecords) {
  DecisionJournal journal(32);
  // Two resolved records with known prediction errors +0.01 and -0.03.
  DecisionRecord r1 = MakeRecord(1, "row", 0.9, 0.0);
  r1.predicted_next = 0.92;
  uint64_t s1 = journal.Append(r1);
  journal.SetRealized(s1, 0.93);
  DecisionRecord r2 = MakeRecord(2, "row", 0.93, 0.0);
  r2.predicted_next = 0.95;
  uint64_t s2 = journal.Append(r2);
  journal.SetRealized(s2, 0.92);
  // One unresolved record: must not contribute.
  journal.Append(MakeRecord(3, "row", 0.92, 0.0));

  auto rmse = journal.RollingModelRmse(10, "row");
  ASSERT_TRUE(rmse.has_value());
  EXPECT_NEAR(*rmse, std::sqrt((0.01 * 0.01 + 0.03 * 0.03) / 2.0), 1e-12);

  // Margin utilization: 1 + (realized - predicted) / et, et = 0.02.
  auto util = journal.RollingEtMarginUtilization(10, "row");
  ASSERT_TRUE(util.has_value());
  EXPECT_NEAR(*util, ((1.0 + 0.01 / 0.02) + (1.0 - 0.03 / 0.02)) / 2.0,
              1e-12);

  EXPECT_FALSE(journal.RollingModelRmse(10, "nope").has_value());
}

// --- The audit cross-check on a real closed loop -------------------------

// A small controlled experiment: the journal the controller kept must
// reproduce the GroupReport's Table-2 quantities bit-for-bit, because both
// paths divide the same monitor watts by the same budget and count the same
// realized freeze ratio.
TEST(DecisionJournalTest, ClosedLoopSummaryMatchesGroupReport) {
  ExperimentConfig config;
  config.seed = 7;
  config.topology.num_rows = 1;
  config.topology.racks_per_row = 2;
  config.topology.servers_per_rack = 30;  // 60 servers.
  config.over_provision_ratio = 0.25;
  config.workload.arrivals.base_rate_per_min = ArrivalRateForNormalizedPower(
      config.topology, config.workload, 0.99, 0.25);
  config.controller.et = EtEstimator::Constant(0.02);
  config.warmup = SimTime::Hours(1);
  config.duration = SimTime::Hours(3);

  ExperimentResult result = RunExperimentToResult(config);
  const JournalDomainSummary* d = result.journal.FindDomain("experiment");
  ASSERT_NE(d, nullptr);
  const GroupReport& report = result.experiment;
  ASSERT_GT(report.minutes.size(), 0u);
  EXPECT_EQ(d->ticks, report.minutes.size());
  EXPECT_EQ(d->violations, static_cast<uint64_t>(report.violations));
  EXPECT_EQ(d->u_mean, report.u_mean);  // Bit-exact, not approximate.
  EXPECT_EQ(d->u_max, report.u_max);
  EXPECT_EQ(d->p_mean, report.p_mean);
  EXPECT_EQ(d->p_max, report.p_max);
  // The control group runs no controller, so no journal domain exists
  // for it.
  EXPECT_EQ(result.journal.FindDomain("control"), nullptr);
}

// journal_capacity = 0 turns the audit log off without touching control
// behavior.
TEST(DecisionJournalTest, ZeroCapacityDisablesJournaling) {
  ExperimentConfig config;
  config.seed = 7;
  config.topology.num_rows = 1;
  config.topology.racks_per_row = 1;
  config.topology.servers_per_rack = 30;
  config.over_provision_ratio = 0.25;
  config.workload.arrivals.base_rate_per_min = ArrivalRateForNormalizedPower(
      config.topology, config.workload, 0.95, 0.25);
  config.warmup = SimTime::Hours(1);
  config.duration = SimTime::Hours(1);
  config.controller.journal_capacity = 0;

  ExperimentResult result = RunExperimentToResult(config);
  EXPECT_EQ(result.journal.total_appended, 0u);
  EXPECT_TRUE(result.journal.domains.empty());
  EXPECT_GT(result.experiment.minutes.size(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace ampere
