#include "src/sched/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace ampere {
namespace {

TopologyConfig TwoRowTopology() {
  TopologyConfig config;
  config.num_rows = 2;
  config.racks_per_row = 1;
  config.servers_per_rack = 8;
  config.server_capacity = Resources{16.0, 64.0};
  return config;
}

JobSpec MakeJob(int32_t id, double cores = 2.0,
                SimTime duration = SimTime::Minutes(5)) {
  JobSpec job;
  job.id = JobId(id);
  job.demand = Resources{cores, cores * 2.0};
  job.duration = duration;
  return job;
}

struct Fixture {
  Simulation sim;
  DataCenter dc;
  Scheduler scheduler;
  explicit Fixture(PlacementPolicy policy = PlacementPolicy::kRandomFit,
                   TopologyConfig topo = TwoRowTopology())
      : dc(topo, &sim),
        scheduler(&dc, MakeConfig(policy), Rng(17)) {}
  static SchedulerConfig MakeConfig(PlacementPolicy policy) {
    SchedulerConfig c;
    c.policy = policy;
    return c;
  }
};

TEST(SchedulerTest, PlacesSubmittedJob) {
  Fixture f;
  f.scheduler.Submit(MakeJob(1));
  EXPECT_EQ(f.scheduler.jobs_submitted(), 1u);
  EXPECT_EQ(f.scheduler.jobs_placed(), 1u);
  EXPECT_EQ(f.scheduler.queue_length(), 0u);
}

TEST(SchedulerTest, NeverPlacesOnFrozenServers) {
  Fixture f;
  // Freeze everything except server 5.
  for (int32_t s = 0; s < f.dc.num_servers(); ++s) {
    if (s != 5) {
      f.scheduler.Freeze(ServerId(s));
    }
  }
  for (int i = 0; i < 6; ++i) {
    f.scheduler.Submit(MakeJob(100 + i));
  }
  EXPECT_EQ(f.scheduler.jobs_placed(), 6u);
  EXPECT_EQ(f.dc.server(ServerId(5)).num_tasks(), 6u);
}

TEST(SchedulerTest, AllFrozenQueuesJobs) {
  Fixture f;
  for (int32_t s = 0; s < f.dc.num_servers(); ++s) {
    f.scheduler.Freeze(ServerId(s));
  }
  f.scheduler.Submit(MakeJob(1));
  EXPECT_EQ(f.scheduler.jobs_placed(), 0u);
  EXPECT_EQ(f.scheduler.queue_length(), 1u);
}

TEST(SchedulerTest, UnfreezeDrainsQueue) {
  Fixture f;
  for (int32_t s = 0; s < f.dc.num_servers(); ++s) {
    f.scheduler.Freeze(ServerId(s));
  }
  f.scheduler.Submit(MakeJob(1));
  f.scheduler.Submit(MakeJob(2));
  ASSERT_EQ(f.scheduler.queue_length(), 2u);
  f.scheduler.Unfreeze(ServerId(3));
  EXPECT_EQ(f.scheduler.queue_length(), 0u);
  EXPECT_EQ(f.dc.server(ServerId(3)).num_tasks(), 2u);
}

TEST(SchedulerTest, CompletionDrainsQueue) {
  Fixture f;
  // Fill every server to capacity with 16-core jobs.
  int32_t id = 0;
  for (int32_t s = 0; s < f.dc.num_servers(); ++s) {
    f.scheduler.Submit(MakeJob(id++, 16.0, SimTime::Minutes(1)));
  }
  f.scheduler.Submit(MakeJob(id++, 16.0, SimTime::Minutes(1)));
  EXPECT_EQ(f.scheduler.queue_length(), 1u);
  f.sim.RunUntil(SimTime::Minutes(1.5));
  EXPECT_EQ(f.scheduler.queue_length(), 0u);
  EXPECT_EQ(f.scheduler.jobs_completed(), 16u);
}

TEST(SchedulerTest, RowAffinityRespected) {
  Fixture f;
  for (int i = 0; i < 20; ++i) {
    JobSpec job = MakeJob(200 + i);
    job.row_affinity = RowId(1);
    f.scheduler.Submit(job);
  }
  EXPECT_EQ(f.scheduler.placements_in_row(RowId(0)), 0u);
  EXPECT_EQ(f.scheduler.placements_in_row(RowId(1)), 20u);
}

TEST(SchedulerTest, ReservedServersSkipped) {
  Fixture f;
  for (int32_t s = 0; s < f.dc.num_servers(); ++s) {
    if (s != 7) {
      f.dc.SetReserved(ServerId(s), true);
    }
  }
  for (int i = 0; i < 4; ++i) {
    f.scheduler.Submit(MakeJob(300 + i));
  }
  EXPECT_EQ(f.dc.server(ServerId(7)).num_tasks(), 4u);
}

TEST(SchedulerTest, PlacementListenerFires) {
  Fixture f;
  std::vector<int32_t> placed_on;
  f.scheduler.SetPlacementListener(
      [&](const JobSpec&, ServerId s) { placed_on.push_back(s.value()); });
  f.scheduler.Submit(MakeJob(1));
  f.scheduler.Submit(MakeJob(2));
  EXPECT_EQ(placed_on.size(), 2u);
}

TEST(SchedulerTest, StatisticalSpreadAcrossRows) {
  // With random-fit and symmetric rows, placements split roughly evenly —
  // the statistical property Ampere's indirect control relies on (§3.4).
  Fixture f;
  for (int i = 0; i < 2000; ++i) {
    f.scheduler.Submit(MakeJob(1000 + i, 1.0, SimTime::Hours(10)));
  }
  auto row0 = static_cast<double>(f.scheduler.placements_in_row(RowId(0)));
  auto row1 = static_cast<double>(f.scheduler.placements_in_row(RowId(1)));
  EXPECT_NEAR(row0 / (row0 + row1), 0.5, 0.05);
}

TEST(SchedulerTest, FreezingShiftsPlacementShareProportionally) {
  // Freeze half of row 0: its share of new placements should drop to ~1/3
  // (4 available vs 8 in row 1).
  Fixture f;
  for (int32_t s = 0; s < 4; ++s) {
    f.scheduler.Freeze(ServerId(s));
  }
  for (int i = 0; i < 3000; ++i) {
    f.scheduler.Submit(MakeJob(1000 + i, 0.1, SimTime::Hours(10)));
  }
  auto row0 = static_cast<double>(f.scheduler.placements_in_row(RowId(0)));
  auto row1 = static_cast<double>(f.scheduler.placements_in_row(RowId(1)));
  EXPECT_NEAR(row0 / (row0 + row1), 1.0 / 3.0, 0.05);
}

TEST(SchedulerTest, LeastLoadedPrefersIdleServers) {
  Fixture f(PlacementPolicy::kLeastLoaded);
  // Pre-load servers 0..13 heavily; 14 and 15 stay empty.
  for (int32_t s = 0; s < 14; ++s) {
    f.dc.PlaceTask(ServerId(s), TaskSpec{JobId(9000 + s),
                                         Resources{14.0, 14.0},
                                         SimTime::Hours(10)});
  }
  for (int i = 0; i < 10; ++i) {
    f.scheduler.Submit(MakeJob(400 + i, 1.0, SimTime::Hours(10)));
  }
  // The two idle servers should absorb well over their uniform share (10 *
  // 2/16 ≈ 1.25 jobs) of the 10 placements.
  size_t idle_tasks = f.dc.server(ServerId(14)).num_tasks() +
                      f.dc.server(ServerId(15)).num_tasks();
  EXPECT_GE(idle_tasks, 5u);
}

TEST(SchedulerTest, RoundRobinCyclesServers) {
  Fixture f(PlacementPolicy::kRoundRobin);
  for (int i = 0; i < 16; ++i) {
    f.scheduler.Submit(MakeJob(500 + i, 1.0, SimTime::Hours(10)));
  }
  for (int32_t s = 0; s < 16; ++s) {
    EXPECT_EQ(f.dc.server(ServerId(s)).num_tasks(), 1u) << "server " << s;
  }
}

TEST(SchedulerTest, OversizedJobStaysQueuedWithoutBlockingOthers) {
  Fixture f;
  f.scheduler.Submit(MakeJob(1, 32.0));  // Larger than any server.
  f.scheduler.Submit(MakeJob(2, 2.0));
  EXPECT_EQ(f.scheduler.queue_length(), 1u);
  EXPECT_EQ(f.scheduler.jobs_placed(), 1u);
}

}  // namespace
}  // namespace ampere
