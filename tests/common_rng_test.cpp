#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ampere {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent(7);
  Rng child1 = parent.Fork(1);
  Rng child2 = parent.Fork(2);
  Rng child1_again = parent.Fork(1);
  EXPECT_EQ(child1.NextU64(), child1_again.NextU64());
  EXPECT_NE(child1.NextU64(), child2.NextU64());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(42);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Exponential(5.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, StandardNormalMoments) {
  Rng rng(42);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double v = rng.StandardNormal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(RngTest, PoissonSmallMeanMatches) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.Poisson(3.5));
  }
  EXPECT_NEAR(sum / n, 3.5, 0.05);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApproximation) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    int64_t v = rng.Poisson(500.0);
    EXPECT_GE(v, 0);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / n, 500.0, 1.0);
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(42);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-1.0), 0);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(42);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, LogNormalMeanMatchesFormula) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 400000;
  const double mu = 0.5;
  const double sigma = 0.8;
  for (int i = 0; i < n; ++i) {
    sum += rng.LogNormal(mu, sigma);
  }
  double expected = std::exp(mu + sigma * sigma / 2.0);
  EXPECT_NEAR(sum / n / expected, 1.0, 0.02);
}

}  // namespace
}  // namespace ampere
