// Randomized-operation invariant tests ("fuzz" style, deterministic seeds).
//
// Each test drives a component with a long random sequence of operations
// and checks global invariants after every step (or batch). These are the
// guards against state-accounting drift: power aggregates, resource
// accounting, frozen/capped bookkeeping, and event-queue consistency.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/controller.h"
#include "src/sched/scheduler.h"
#include "src/telemetry/power_monitor.h"
#include "src/workload/batch_workload.h"

namespace ampere {
namespace {

TopologyConfig FuzzTopology(bool capping, CappingMode mode) {
  TopologyConfig config;
  config.num_rows = 3;
  config.racks_per_row = 2;
  config.servers_per_rack = 6;  // 36 servers.
  config.server_capacity = Resources{16.0, 64.0};
  config.capping_enabled = capping;
  config.capping_mode = mode;
  if (capping) {
    config.row_budget_watts = 12 * 220.0;  // Tight enough to engage.
  }
  return config;
}

// Recomputed-from-scratch vs incrementally-maintained state must agree.
void CheckPowerAggregates(const DataCenter& dc) {
  double total = 0.0;
  for (int32_t r = 0; r < dc.num_rows(); ++r) {
    double row_sum = 0.0;
    for (ServerId id : dc.servers_in_row(RowId(r))) {
      row_sum += dc.server_power_watts(id);
    }
    ASSERT_NEAR(dc.row_power_watts(RowId(r)), row_sum, 1e-6)
        << "row " << r << " aggregate drifted";
    total += row_sum;
  }
  ASSERT_NEAR(dc.total_power_watts(), total, 1e-6);
  for (int32_t k = 0; k < dc.num_racks(); ++k) {
    double rack_sum = 0.0;
    for (ServerId id : dc.servers_in_rack(RackId(k))) {
      rack_sum += dc.server_power_watts(id);
    }
    ASSERT_NEAR(dc.rack_power_watts(RackId(k)), rack_sum, 1e-6);
  }
}

void CheckCappedCounts(const DataCenter& dc) {
  for (int32_t r = 0; r < dc.num_rows(); ++r) {
    size_t capped = 0;
    for (ServerId id : dc.servers_in_row(RowId(r))) {
      if (dc.IsServerCapped(id)) {
        ++capped;
      }
    }
    double expected = static_cast<double>(capped) /
                      static_cast<double>(dc.servers_in_row(RowId(r)).size());
    ASSERT_NEAR(dc.FractionOfServersCapped(RowId(r)), expected, 1e-12);
  }
}

class DataCenterFuzzTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(DataCenterFuzzTest, AggregatesNeverDrift) {
  auto [seed, mode_int] = GetParam();
  auto mode = static_cast<CappingMode>(mode_int);
  Rng rng(seed);
  Simulation sim;
  DataCenter dc(FuzzTopology(/*capping=*/true, mode), &sim);
  int32_t next_job = 0;

  for (int step = 0; step < 3000; ++step) {
    double op = rng.NextDouble();
    ServerId target(static_cast<int32_t>(rng.UniformInt(0, 35)));
    if (op < 0.55) {
      // Random placement attempt (may fail; that's fine).
      TaskSpec spec{JobId(next_job++),
                    Resources{static_cast<double>(rng.UniformInt(1, 6)),
                              static_cast<double>(rng.UniformInt(1, 16))},
                    SimTime::Minutes(rng.Uniform(0.2, 30.0))};
      dc.PlaceTask(target, spec);
    } else if (op < 0.7) {
      dc.SetFrozen(target, rng.Bernoulli(0.5));
    } else if (op < 0.75) {
      dc.SetRowCappingBudget(
          RowId(static_cast<int32_t>(rng.UniformInt(0, 2))),
          rng.Uniform(12 * 180.0, 12 * 260.0));
    } else {
      // Advance time; completions fire.
      sim.RunUntil(sim.now() + SimTime::Seconds(rng.Uniform(1.0, 120.0)));
    }
    if (step % 97 == 0) {
      CheckPowerAggregates(dc);
      CheckCappedCounts(dc);
    }
  }
  // Drain everything; power must return to the idle floor.
  sim.RunUntil(sim.now() + SimTime::Hours(2));
  CheckPowerAggregates(dc);
  for (int32_t s = 0; s < dc.num_servers(); ++s) {
    EXPECT_EQ(dc.server(ServerId(s)).num_tasks(), 0u);
    EXPECT_DOUBLE_EQ(dc.server(ServerId(s)).utilization(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DataCenterFuzzTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(0, 1)));  // kRowUniform, kPerServer.

TEST(SchedulerFuzzTest, ResourceAccountingUnderChurn) {
  Rng rng(77);
  Simulation sim;
  DataCenter dc(FuzzTopology(false, CappingMode::kRowUniform), &sim);
  Scheduler scheduler(&dc, SchedulerConfig{}, rng.Fork(1));
  int32_t next_job = 0;

  for (int step = 0; step < 5000; ++step) {
    double op = rng.NextDouble();
    if (op < 0.6) {
      JobSpec job;
      job.id = JobId(next_job++);
      job.demand = Resources{static_cast<double>(rng.UniformInt(1, 8)),
                             static_cast<double>(rng.UniformInt(1, 24))};
      job.duration = SimTime::Minutes(rng.Uniform(0.5, 20.0));
      if (rng.Bernoulli(0.2)) {
        job.row_affinity = RowId(static_cast<int32_t>(rng.UniformInt(0, 2)));
      }
      scheduler.Submit(job);
    } else if (op < 0.8) {
      ServerId target(static_cast<int32_t>(rng.UniformInt(0, 35)));
      if (rng.Bernoulli(0.5)) {
        scheduler.Freeze(target);
      } else {
        scheduler.Unfreeze(target);
      }
    } else {
      sim.RunUntil(sim.now() + SimTime::Seconds(rng.Uniform(1.0, 180.0)));
    }
    if (step % 203 == 0) {
      // Allocation never exceeds capacity, never goes negative.
      for (int32_t s = 0; s < dc.num_servers(); ++s) {
        const Server& server = dc.server(ServerId(s));
        ASSERT_TRUE(server.capacity().Fits(server.allocated()));
        ASSERT_TRUE(server.allocated().NonNegative());
      }
    }
  }
  // Conservation: everything submitted is placed, queued, or completed.
  sim.RunUntil(sim.now() + SimTime::Hours(3));
  // Unfreeze all so the queue can drain fully.
  for (int32_t s = 0; s < dc.num_servers(); ++s) {
    scheduler.Unfreeze(ServerId(s));
  }
  sim.RunUntil(sim.now() + SimTime::Hours(3));
  EXPECT_EQ(scheduler.jobs_placed(),
            scheduler.jobs_submitted() - scheduler.queue_length());
  EXPECT_EQ(scheduler.jobs_completed(), scheduler.jobs_placed());
}

TEST(ClosedLoopFuzzTest, ControllerNeverBreaksSchedulerInvariants) {
  // A controller with absurd parameters (huge margins, tiny kr, random
  // selection) must still never place jobs on frozen servers or corrupt
  // the frozen-set bookkeeping.
  Rng rng(99);
  Simulation sim;
  DataCenter dc(FuzzTopology(false, CappingMode::kRowUniform), &sim);
  TimeSeriesDb db;
  Scheduler scheduler(&dc, SchedulerConfig{}, rng.Fork(1));
  PowerMonitor monitor(&dc, &db, PowerMonitorConfig{}, rng.Fork(2));
  std::vector<ServerId> all;
  for (int32_t s = 0; s < dc.num_servers(); ++s) {
    all.push_back(ServerId(s));
  }
  monitor.RegisterGroup("all", all);

  JobIdAllocator ids;
  BatchWorkloadParams params;
  params.arrivals.base_rate_per_min = 40.0;
  BatchWorkload workload(params, &sim, &scheduler, &ids, rng.Fork(3));

  AmpereControllerConfig config;
  config.effect = FreezeEffectModel(0.002);  // Tiny: u saturates often.
  config.et = EtEstimator::Constant(0.15);   // Huge margin.
  config.selection = FreezeSelection::kRandom;
  AmpereController controller(&scheduler, &monitor, config);
  controller.AddDomain({"all", all, 36 * 215.0});

  bool frozen_placement = false;
  scheduler.SetPlacementListener([&](const JobSpec&, ServerId server) {
    if (dc.server(server).frozen()) {
      frozen_placement = true;
    }
  });

  workload.Start(SimTime());
  monitor.Start(SimTime::Minutes(1));
  controller.Start(&sim, SimTime::Minutes(1) + SimTime::Seconds(1));
  sim.RunUntil(SimTime::Hours(6));

  EXPECT_FALSE(frozen_placement);
  // The controller's cached frozen set matches the scheduler's flags.
  size_t flagged = 0;
  for (int32_t s = 0; s < dc.num_servers(); ++s) {
    if (dc.server(ServerId(s)).frozen()) {
      ++flagged;
    }
  }
  EXPECT_EQ(controller.frozen_count(0), flagged);
}

}  // namespace
}  // namespace ampere
