// Randomized-operation invariant tests ("fuzz" style, deterministic seeds).
//
// Each test drives a component with a long random sequence of operations
// and checks global invariants after every step (or batch). These are the
// guards against state-accounting drift: power aggregates, resource
// accounting, frozen/capped bookkeeping, and event-queue consistency.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/controller.h"
#include "src/sched/scheduler.h"
#include "src/telemetry/cold_store.h"
#include "src/telemetry/mmap_segment.h"
#include "src/telemetry/power_monitor.h"
#include "src/workload/batch_workload.h"
#include "src/workload/trace_format.h"

namespace ampere {
namespace {

TopologyConfig FuzzTopology(bool capping, CappingMode mode) {
  TopologyConfig config;
  config.num_rows = 3;
  config.racks_per_row = 2;
  config.servers_per_rack = 6;  // 36 servers.
  config.server_capacity = Resources{16.0, 64.0};
  config.capping_enabled = capping;
  config.capping_mode = mode;
  if (capping) {
    config.row_budget_watts = 12 * 220.0;  // Tight enough to engage.
  }
  return config;
}

// Recomputed-from-scratch vs incrementally-maintained state must agree.
void CheckPowerAggregates(const DataCenter& dc) {
  double total = 0.0;
  for (int32_t r = 0; r < dc.num_rows(); ++r) {
    double row_sum = 0.0;
    for (ServerId id : dc.servers_in_row(RowId(r))) {
      row_sum += dc.server_power_watts(id);
    }
    ASSERT_NEAR(dc.row_power_watts(RowId(r)), row_sum, 1e-6)
        << "row " << r << " aggregate drifted";
    total += row_sum;
  }
  ASSERT_NEAR(dc.total_power_watts(), total, 1e-6);
  for (int32_t k = 0; k < dc.num_racks(); ++k) {
    double rack_sum = 0.0;
    for (ServerId id : dc.servers_in_rack(RackId(k))) {
      rack_sum += dc.server_power_watts(id);
    }
    ASSERT_NEAR(dc.rack_power_watts(RackId(k)), rack_sum, 1e-6);
  }
}

void CheckCappedCounts(const DataCenter& dc) {
  for (int32_t r = 0; r < dc.num_rows(); ++r) {
    size_t capped = 0;
    for (ServerId id : dc.servers_in_row(RowId(r))) {
      if (dc.IsServerCapped(id)) {
        ++capped;
      }
    }
    double expected = static_cast<double>(capped) /
                      static_cast<double>(dc.servers_in_row(RowId(r)).size());
    ASSERT_NEAR(dc.FractionOfServersCapped(RowId(r)), expected, 1e-12);
  }
}

class DataCenterFuzzTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(DataCenterFuzzTest, AggregatesNeverDrift) {
  auto [seed, mode_int] = GetParam();
  auto mode = static_cast<CappingMode>(mode_int);
  Rng rng(seed);
  Simulation sim;
  DataCenter dc(FuzzTopology(/*capping=*/true, mode), &sim);
  int32_t next_job = 0;

  for (int step = 0; step < 3000; ++step) {
    double op = rng.NextDouble();
    ServerId target(static_cast<int32_t>(rng.UniformInt(0, 35)));
    if (op < 0.55) {
      // Random placement attempt (may fail; that's fine).
      TaskSpec spec{JobId(next_job++),
                    Resources{static_cast<double>(rng.UniformInt(1, 6)),
                              static_cast<double>(rng.UniformInt(1, 16))},
                    SimTime::Minutes(rng.Uniform(0.2, 30.0))};
      dc.PlaceTask(target, spec);
    } else if (op < 0.7) {
      dc.SetFrozen(target, rng.Bernoulli(0.5));
    } else if (op < 0.75) {
      dc.SetRowCappingBudget(
          RowId(static_cast<int32_t>(rng.UniformInt(0, 2))),
          rng.Uniform(12 * 180.0, 12 * 260.0));
    } else {
      // Advance time; completions fire.
      sim.RunUntil(sim.now() + SimTime::Seconds(rng.Uniform(1.0, 120.0)));
    }
    if (step % 97 == 0) {
      CheckPowerAggregates(dc);
      CheckCappedCounts(dc);
    }
  }
  // Drain everything; power must return to the idle floor.
  sim.RunUntil(sim.now() + SimTime::Hours(2));
  CheckPowerAggregates(dc);
  for (int32_t s = 0; s < dc.num_servers(); ++s) {
    EXPECT_EQ(dc.server(ServerId(s)).num_tasks(), 0u);
    EXPECT_DOUBLE_EQ(dc.server(ServerId(s)).utilization(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DataCenterFuzzTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(0, 1)));  // kRowUniform, kPerServer.

TEST(SchedulerFuzzTest, ResourceAccountingUnderChurn) {
  Rng rng(77);
  Simulation sim;
  DataCenter dc(FuzzTopology(false, CappingMode::kRowUniform), &sim);
  Scheduler scheduler(&dc, SchedulerConfig{}, rng.Fork(1));
  int32_t next_job = 0;

  for (int step = 0; step < 5000; ++step) {
    double op = rng.NextDouble();
    if (op < 0.6) {
      JobSpec job;
      job.id = JobId(next_job++);
      job.demand = Resources{static_cast<double>(rng.UniformInt(1, 8)),
                             static_cast<double>(rng.UniformInt(1, 24))};
      job.duration = SimTime::Minutes(rng.Uniform(0.5, 20.0));
      if (rng.Bernoulli(0.2)) {
        job.row_affinity = RowId(static_cast<int32_t>(rng.UniformInt(0, 2)));
      }
      scheduler.Submit(job);
    } else if (op < 0.8) {
      ServerId target(static_cast<int32_t>(rng.UniformInt(0, 35)));
      if (rng.Bernoulli(0.5)) {
        scheduler.Freeze(target);
      } else {
        scheduler.Unfreeze(target);
      }
    } else {
      sim.RunUntil(sim.now() + SimTime::Seconds(rng.Uniform(1.0, 180.0)));
    }
    if (step % 203 == 0) {
      // Allocation never exceeds capacity, never goes negative.
      for (int32_t s = 0; s < dc.num_servers(); ++s) {
        const Server& server = dc.server(ServerId(s));
        ASSERT_TRUE(server.capacity().Fits(server.allocated()));
        ASSERT_TRUE(server.allocated().NonNegative());
      }
    }
  }
  // Conservation: everything submitted is placed, queued, or completed.
  sim.RunUntil(sim.now() + SimTime::Hours(3));
  // Unfreeze all so the queue can drain fully.
  for (int32_t s = 0; s < dc.num_servers(); ++s) {
    scheduler.Unfreeze(ServerId(s));
  }
  sim.RunUntil(sim.now() + SimTime::Hours(3));
  EXPECT_EQ(scheduler.jobs_placed(),
            scheduler.jobs_submitted() - scheduler.queue_length());
  EXPECT_EQ(scheduler.jobs_completed(), scheduler.jobs_placed());
}

TEST(ClosedLoopFuzzTest, ControllerNeverBreaksSchedulerInvariants) {
  // A controller with absurd parameters (huge margins, tiny kr, random
  // selection) must still never place jobs on frozen servers or corrupt
  // the frozen-set bookkeeping.
  Rng rng(99);
  Simulation sim;
  DataCenter dc(FuzzTopology(false, CappingMode::kRowUniform), &sim);
  TimeSeriesDb db;
  Scheduler scheduler(&dc, SchedulerConfig{}, rng.Fork(1));
  PowerMonitor monitor(&dc, &db, PowerMonitorConfig{}, rng.Fork(2));
  std::vector<ServerId> all;
  for (int32_t s = 0; s < dc.num_servers(); ++s) {
    all.push_back(ServerId(s));
  }
  monitor.RegisterGroup("all", all);

  JobIdAllocator ids;
  BatchWorkloadParams params;
  params.arrivals.base_rate_per_min = 40.0;
  BatchWorkload workload(params, &sim, &scheduler, &ids, rng.Fork(3));

  AmpereControllerConfig config;
  config.effect = FreezeEffectModel(0.002);  // Tiny: u saturates often.
  config.et = EtEstimator::Constant(0.15);   // Huge margin.
  config.selection = FreezeSelection::kRandom;
  AmpereController controller(&scheduler, &monitor, config);
  controller.AddDomain({"all", all, 36 * 215.0});

  bool frozen_placement = false;
  scheduler.SetPlacementListener([&](const JobSpec&, ServerId server) {
    if (dc.server(server).frozen()) {
      frozen_placement = true;
    }
  });

  workload.Start(SimTime());
  monitor.Start(SimTime::Minutes(1));
  controller.Start(&sim, SimTime::Minutes(1) + SimTime::Seconds(1));
  sim.RunUntil(SimTime::Hours(6));

  EXPECT_FALSE(frozen_placement);
  // The controller's cached frozen set matches the scheduler's flags.
  size_t flagged = 0;
  for (int32_t s = 0; s < dc.num_servers(); ++s) {
    if (dc.server(ServerId(s)).frozen()) {
      ++flagged;
    }
  }
  EXPECT_EQ(controller.frozen_count(0), flagged);
}

// --- Trace parser: negative paths and byte-level fuzzing ------------------
//
// The ampere.trace.v1 parser's contract: any byte string — truncated,
// bit-flipped, version-skewed, or outright garbage — yields a structured
// TraceParseResult (distinct error code, message, byte offset). It never
// crashes, never throws, never CHECK-fails. CI runs these under
// ASan/UBSan, where an overrun read would be loud.

TraceData SmallTrace() {
  TraceData trace;
  trace.seed = 77;
  trace.classes.push_back(TraceClass{2.0, 4.0, 1.0});
  for (int i = 0; i < 3; ++i) {
    TraceJob job;
    job.submit_us = 1000000LL * (i + 1);
    job.duration_us = 60000000LL;
    job.cpu_cores = 2.0;
    job.memory_gb = 4.0;
    job.class_id = 0;
    trace.jobs.push_back(job);
  }
  return trace;
}

// Little-endian writers for hand-crafting wire bytes in tests.
void TestPut16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}
void TestPut32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}
void TestPut64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}
void TestPutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  TestPut64(out, bits);
}

// Overwrites `size` bytes at `offset` with the little-endian value.
void Patch(std::string* bytes, size_t offset, uint64_t value, size_t size) {
  for (size_t i = 0; i < size; ++i) {
    (*bytes)[offset + i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

TEST(TraceParseTest, ValidBytesRoundTrip) {
  const TraceData trace = SmallTrace();
  TraceParseResult parsed = ParseTrace(SerializeTrace(trace));
  ASSERT_TRUE(parsed.ok()) << parsed.message;
  EXPECT_EQ(parsed.error, TraceError::kNone);
  EXPECT_EQ(parsed.trace.seed, 77u);
  ASSERT_EQ(parsed.trace.jobs.size(), 3u);
  EXPECT_EQ(parsed.trace.jobs[2].submit_us, 3000000);
  ASSERT_EQ(parsed.trace.classes.size(), 1u);
  EXPECT_EQ(parsed.trace.classes[0].memory_gb, 4.0);
}

TEST(TraceParseTest, EmptyAndShortInputsAreTruncated) {
  for (const std::string input : {std::string(), std::string("AMP"),
                                  std::string("AMPTRACE"),
                                  std::string("AMPTRACE\x01\x00", 10)}) {
    TraceParseResult parsed = ParseTrace(input);
    EXPECT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.error, TraceError::kTruncated) << parsed.message;
    EXPECT_FALSE(parsed.message.empty());
  }
}

TEST(TraceParseTest, MissingFileIsAnIoError) {
  TraceParseResult parsed =
      ReadTraceFile("/nonexistent/ampere-trace-test.trace");
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error, TraceError::kIo);
  EXPECT_FALSE(parsed.message.empty());
}

TEST(TraceParseTest, BadMagicIsStructured) {
  std::string bytes = SerializeTrace(SmallTrace());
  bytes[0] = 'X';
  TraceParseResult parsed = ParseTrace(bytes);
  EXPECT_EQ(parsed.error, TraceError::kBadMagic);
  EXPECT_EQ(parsed.byte_offset, 0u);
}

TEST(TraceParseTest, VersionSkewIsStructured) {
  std::string bytes = SerializeTrace(SmallTrace());
  Patch(&bytes, 8, 2, 4);  // Version field: a v2 file under a v1 reader.
  TraceParseResult parsed = ParseTrace(bytes);
  EXPECT_EQ(parsed.error, TraceError::kVersionSkew);
  EXPECT_NE(parsed.message.find("version 2"), std::string::npos)
      << parsed.message;
}

TEST(TraceParseTest, CorruptLengthPrefixesAreStructured) {
  const std::string valid = SerializeTrace(SmallTrace());
  // Header length below the fixed minimum (20 bytes).
  std::string bytes = valid;
  Patch(&bytes, 12, 3, 4);
  EXPECT_EQ(ParseTrace(bytes).error, TraceError::kCorruptLength);
  // Impossible job count (larger than the file could hold).
  bytes = valid;
  Patch(&bytes, 24, 0x00ffffffffffffffULL, 8);
  EXPECT_EQ(ParseTrace(bytes).error, TraceError::kCorruptLength);
  // Absurd class count.
  bytes = valid;
  Patch(&bytes, 32, 100000, 4);
  EXPECT_EQ(ParseTrace(bytes).error, TraceError::kCorruptLength);
  // First job record: zero and oversized length prefixes. The record area
  // starts after the 16-byte preamble + 20-byte fixed header + one class.
  const size_t record_at = 16 + 20 + 24;
  bytes = valid;
  Patch(&bytes, record_at, 0, 4);
  TraceParseResult zero_len = ParseTrace(bytes);
  EXPECT_EQ(zero_len.error, TraceError::kCorruptLength);
  EXPECT_EQ(zero_len.byte_offset, record_at);
  bytes = valid;
  Patch(&bytes, record_at, 100000, 4);
  EXPECT_EQ(ParseTrace(bytes).error, TraceError::kCorruptLength);
}

TEST(TraceParseTest, TruncationAtEveryOffsetNeverCrashes) {
  const std::string bytes = SerializeTrace(SmallTrace());
  for (size_t len = 0; len < bytes.size(); ++len) {
    TraceParseResult parsed = ParseTrace(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(parsed.ok()) << "prefix of " << len << " bytes parsed";
    EXPECT_NE(parsed.error, TraceError::kNone);
    EXPECT_FALSE(parsed.message.empty());
    EXPECT_LE(parsed.byte_offset, len);
  }
  EXPECT_TRUE(ParseTrace(bytes).ok());
}

TEST(TraceParseTest, OutOfOrderTimestampsAreStructured) {
  TraceData trace = SmallTrace();
  std::swap(trace.jobs[0], trace.jobs[2]);  // 3 s, 2 s, 1 s.
  TraceParseResult parsed = ParseTrace(SerializeTrace(trace));
  EXPECT_EQ(parsed.error, TraceError::kOutOfOrder);
  EXPECT_NE(parsed.message.find("out-of-order"), std::string::npos);
}

TEST(TraceParseTest, BadRecordFieldsAreStructured) {
  // Each mutation invalidates one field of an otherwise-valid trace.
  auto expect_bad = [](TraceData trace) {
    TraceParseResult parsed = ParseTrace(SerializeTrace(trace));
    EXPECT_EQ(parsed.error, TraceError::kBadRecord) << parsed.message;
  };
  TraceData trace = SmallTrace();
  trace.jobs[1].duration_us = 0;
  expect_bad(trace);
  trace = SmallTrace();
  trace.jobs[1].submit_us = -5;
  expect_bad(trace);
  trace = SmallTrace();
  trace.jobs[1].cpu_cores = std::numeric_limits<double>::quiet_NaN();
  expect_bad(trace);
  trace = SmallTrace();
  trace.jobs[1].class_id = 9;  // Out of range and not kTraceCustomClass.
  expect_bad(trace);
  trace = SmallTrace();
  trace.jobs[1].row_affinity = -7;
  expect_bad(trace);
  trace = SmallTrace();
  trace.classes[0].weight = -1.0;
  expect_bad(trace);
}

TEST(TraceParseTest, TrailerProblemsAreStructured) {
  const std::string valid = SerializeTrace(SmallTrace());
  std::string bytes = valid;
  Patch(&bytes, bytes.size() - 4, 0xdeadbeef, 4);  // Wrong end marker.
  EXPECT_EQ(ParseTrace(bytes).error, TraceError::kBadTrailer);
  bytes = valid + std::string("junk");  // Bytes after the end marker.
  EXPECT_EQ(ParseTrace(bytes).error, TraceError::kBadTrailer);
}

TEST(TraceParseTest, ForwardCompatExtensionBytesAreSkipped) {
  // A v1.x writer may grow the header and records; a v1 reader must skip
  // the extra bytes using the declared lengths. Hand-craft such a file.
  std::string bytes;
  bytes.append("AMPTRACE");
  TestPut32(&bytes, 1);       // Version.
  TestPut32(&bytes, 20 + 24 + 8);  // Header: fixed + 1 class + 8 extra bytes.
  TestPut64(&bytes, 123);     // Seed.
  TestPut64(&bytes, 1);       // Job count.
  TestPut32(&bytes, 1);       // Class count.
  TestPutF64(&bytes, 2.0);    // Class: cpu.
  TestPutF64(&bytes, 4.0);    // Class: mem.
  TestPutF64(&bytes, 1.0);    // Class: weight.
  TestPut64(&bytes, 0);       // Unknown header extension.
  TestPut32(&bytes, 38 + 6);  // Record length: v1 payload + 6 extra bytes.
  TestPut64(&bytes, 5000000); // submit_us.
  TestPut64(&bytes, 60000000);  // duration_us.
  TestPutF64(&bytes, 2.0);    // cpu.
  TestPutF64(&bytes, 4.0);    // mem.
  TestPut32(&bytes, static_cast<uint32_t>(-1));  // No row affinity.
  TestPut16(&bytes, 0);       // class_id.
  bytes.append(6, '\0');      // Unknown record extension.
  TestPut32(&bytes, 0xA19E57E1u);  // End marker.

  TraceParseResult parsed = ParseTrace(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.message;
  EXPECT_EQ(parsed.trace.seed, 123u);
  ASSERT_EQ(parsed.trace.jobs.size(), 1u);
  EXPECT_EQ(parsed.trace.jobs[0].submit_us, 5000000);
  EXPECT_EQ(parsed.trace.jobs[0].row_affinity, -1);
}

TEST(TraceParseTest, RandomByteMutationSweepNeverCrashes) {
  // Deterministic fuzz: thousands of single-to-few-byte corruptions of a
  // valid trace, plus pure-garbage buffers. Every outcome must be either a
  // clean parse (the mutation hit a don't-care byte) or a structured error;
  // ASan/UBSan guard the memory-safety half of the claim.
  const std::string valid = SerializeTrace(SmallTrace());
  Rng rng(20160808);
  for (int iteration = 0; iteration < 4000; ++iteration) {
    std::string bytes = valid;
    const int flips = 1 + static_cast<int>(rng.NextU64() % 4);
    for (int f = 0; f < flips; ++f) {
      const size_t at = rng.NextU64() % bytes.size();
      bytes[at] = static_cast<char>(rng.NextU64());
    }
    TraceParseResult parsed = ParseTrace(bytes);
    if (!parsed.ok()) {
      EXPECT_NE(parsed.error, TraceError::kNone);
      EXPECT_FALSE(parsed.message.empty());
      EXPECT_LE(parsed.byte_offset, bytes.size());
    }
  }
  for (int iteration = 0; iteration < 500; ++iteration) {
    std::string garbage(rng.NextU64() % 256, '\0');
    for (char& c : garbage) {
      c = static_cast<char>(rng.NextU64());
    }
    TraceParseResult parsed = ParseTrace(garbage);
    if (!parsed.ok()) {
      EXPECT_FALSE(parsed.message.empty());
    }
  }
}

// --- Cold store: segment + manifest byte-level fuzzing --------------------
//
// Same contract as the trace parser, same sanitizer coverage: segment files
// and manifests are external bytes. Any corruption — a flip at any offset,
// truncation at any length, mangled manifest lines — must come back as a
// structured StoreStatus. Never a crash, never a throw, never a CHECK.

std::string ColdFuzzDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "ampere_fuzz_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)), {});
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A small sealed segment on disk; returns its bytes.
std::string BuildSealedSegment(const std::string& path) {
  auto writer = SegmentWriter::Create(path, StoreSeriesKey("fuzz"), 8, 64);
  EXPECT_NE(writer, nullptr);
  std::vector<TimePoint> points;
  for (int i = 0; i < 32; ++i) {
    points.push_back(TimePoint{SimTime::Minutes(static_cast<double>(i + 1)),
                               0.5 * i});
  }
  writer->AppendBatch(points);
  EXPECT_TRUE(writer->Seal().ok());
  return ReadFileBytes(path);
}

TEST(ColdStoreFuzzTest, SegmentByteFlipsAtEveryOffsetAreStructured) {
  const std::string dir = ColdFuzzDir("segment_flips");
  const std::string path = dir + "/seg.seg";
  const std::string valid = BuildSealedSegment(path);
  ASSERT_TRUE(SegmentReader::Open(path).status.ok());
  // Every byte of a sealed segment is covered by a CRC (or checked before
  // the CRCs, like the magic), so ANY changed byte must fail to open — with
  // a structured error, under ASan/UBSan in CI.
  for (size_t at = 0; at < valid.size(); ++at) {
    for (const uint8_t mask : {uint8_t{0x01}, uint8_t{0x80}, uint8_t{0xff}}) {
      std::string bytes = valid;
      bytes[at] = static_cast<char>(static_cast<uint8_t>(bytes[at]) ^ mask);
      WriteFileBytes(path, bytes);
      auto opened = SegmentReader::Open(path);
      EXPECT_FALSE(opened.status.ok())
          << "byte " << at << " ^ " << static_cast<int>(mask) << " opened";
      EXPECT_NE(opened.status.error, StoreError::kNone);
      EXPECT_FALSE(opened.status.message.empty());
    }
  }
}

TEST(ColdStoreFuzzTest, SegmentTruncationAtEveryLengthIsStructured) {
  const std::string dir = ColdFuzzDir("segment_trunc");
  const std::string path = dir + "/seg.seg";
  const std::string valid = BuildSealedSegment(path);
  for (size_t len = 0; len < valid.size(); ++len) {
    WriteFileBytes(path, valid.substr(0, len));
    auto opened = SegmentReader::Open(path);
    EXPECT_FALSE(opened.status.ok()) << "prefix of " << len << " opened";
    EXPECT_NE(opened.status.error, StoreError::kNone);
    EXPECT_FALSE(opened.status.message.empty());
  }
  WriteFileBytes(path, valid);
  EXPECT_TRUE(SegmentReader::Open(path).status.ok());
}

TEST(ColdStoreFuzzTest, SegmentGarbageBuffersAreStructured) {
  const std::string dir = ColdFuzzDir("segment_garbage");
  const std::string path = dir + "/seg.seg";
  Rng rng(20160808);
  for (int iteration = 0; iteration < 500; ++iteration) {
    std::string garbage(rng.NextU64() % 1024, '\0');
    for (char& c : garbage) {
      c = static_cast<char>(rng.NextU64());
    }
    WriteFileBytes(path, garbage);
    auto opened = SegmentReader::Open(path);
    EXPECT_FALSE(opened.status.ok());
    EXPECT_FALSE(opened.status.message.empty());
  }
}

TEST(ColdStoreFuzzTest, ManifestMutationSweepNeverCrashes) {
  const std::string dir = ColdFuzzDir("manifest_mut");
  {
    auto created = ColdStore::Create(ColdStoreConfig{dir, 16, 4});
    ASSERT_TRUE(created.status.ok());
    std::vector<TimePoint> points;
    for (int i = 0; i < 40; ++i) {
      points.push_back(TimePoint{SimTime::Minutes(static_cast<double>(i + 1)),
                                 1.5 * i});
    }
    created.store->AppendBatch("power/total", points);
    created.store->AppendBatch("server/0/power", points);
    ASSERT_TRUE(created.store->Flush().ok());
  }
  const std::string manifest = dir + "/manifest.ampts";
  const std::string valid = ReadFileBytes(manifest);
  ASSERT_TRUE(ColdStore::OpenExisting(ColdStoreConfig{dir}).status.ok());
  Rng rng(20160809);
  // Byte mutations, truncations, and random insertions. A mutation may
  // land on a don't-care byte and still open; if it does not, the error
  // must be structured.
  for (int iteration = 0; iteration < 2000; ++iteration) {
    std::string bytes = valid;
    switch (rng.NextU64() % 3) {
      case 0: {  // Flip a few bytes.
        const int flips = 1 + static_cast<int>(rng.NextU64() % 4);
        for (int f = 0; f < flips; ++f) {
          const size_t at = rng.NextU64() % bytes.size();
          bytes[at] = static_cast<char>(rng.NextU64());
        }
        break;
      }
      case 1:  // Truncate.
        bytes.resize(rng.NextU64() % bytes.size());
        break;
      default: {  // Insert garbage at a random spot.
        std::string junk(1 + rng.NextU64() % 32, '\0');
        for (char& c : junk) {
          c = static_cast<char>(rng.NextU64());
        }
        bytes.insert(rng.NextU64() % (bytes.size() + 1), junk);
        break;
      }
    }
    WriteFileBytes(manifest, bytes);
    auto opened = ColdStore::OpenExisting(ColdStoreConfig{dir});
    if (!opened.status.ok()) {
      EXPECT_NE(opened.status.error, StoreError::kNone);
      EXPECT_FALSE(opened.status.message.empty());
    }
  }
}

}  // namespace
}  // namespace ampere
