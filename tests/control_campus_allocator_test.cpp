#include "src/control/campus_allocator.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/common/check.h"

namespace ampere {
namespace {

std::vector<CampusDcObservation> UniformDcs(size_t n, double observed,
                                            double contract) {
  std::vector<CampusDcObservation> dcs(n);
  for (CampusDcObservation& dc : dcs) {
    dc.observed_watts = observed;
    dc.budget_watts = contract / 2.0;
    dc.contract_watts = contract;
  }
  return dcs;
}

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(CampusAllocatorTest, StaticPolicyIsEqualSplit) {
  CampusAllocatorConfig config;
  config.policy = CampusAllocPolicy::kStatic;
  auto dcs = UniformDcs(4, 500.0, 100000.0);
  // Demand heterogeneity must not matter for the static baseline.
  dcs[0].observed_watts = 90000.0;
  dcs[3].observed_watts = 10.0;
  std::vector<double> shares = AllocateCampusBudgets(40000.0, dcs, config);
  ASSERT_EQ(shares.size(), 4u);
  for (double s : shares) {
    EXPECT_NEAR(s, 10000.0, 1e-6);
  }
}

TEST(CampusAllocatorTest, SharesConserveTheCampusTotal) {
  CampusAllocatorConfig config;
  for (CampusAllocPolicy policy :
       {CampusAllocPolicy::kStatic, CampusAllocPolicy::kHeadroom}) {
    config.policy = policy;
    auto dcs = UniformDcs(4, 8000.0, 100000.0);
    dcs[1].observed_watts = 30000.0;
    dcs[2].observed_watts = 100.0;
    std::vector<double> shares = AllocateCampusBudgets(60000.0, dcs, config);
    EXPECT_NEAR(Sum(shares), 60000.0, 1e-6);
  }
}

TEST(CampusAllocatorTest, HeadroomFollowsDemand) {
  CampusAllocatorConfig config;
  config.policy = CampusAllocPolicy::kHeadroom;
  auto dcs = UniformDcs(4, 10000.0, 100000.0);
  dcs[0].observed_watts = 30000.0;  // Hot DC.
  dcs[3].observed_watts = 2000.0;   // Cold DC.
  std::vector<double> shares = AllocateCampusBudgets(80000.0, dcs, config);
  EXPECT_GT(shares[0], shares[1]);
  EXPECT_GT(shares[1], shares[3]);
  // The hot DC gets more than the equal split, funded by the cold DC.
  EXPECT_GT(shares[0], 20000.0);
  EXPECT_LT(shares[3], 20000.0);
}

TEST(CampusAllocatorTest, ContractsClampAndResidualRedistributes) {
  CampusAllocatorConfig config;
  config.policy = CampusAllocPolicy::kHeadroom;
  auto dcs = UniformDcs(3, 10000.0, 100000.0);
  dcs[0].observed_watts = 90000.0;
  dcs[0].contract_watts = 15000.0;  // Tight contract on the hottest DC.
  std::vector<double> shares = AllocateCampusBudgets(60000.0, dcs, config);
  EXPECT_LE(shares[0], 15000.0 + 1e-9);
  // The clamped watts flow to the siblings, not into the void.
  EXPECT_NEAR(Sum(shares), 60000.0, 1e-6);
}

TEST(CampusAllocatorTest, FloorProtectsIdleDcs) {
  CampusAllocatorConfig config;
  config.policy = CampusAllocPolicy::kHeadroom;
  config.min_share = 0.10;
  auto dcs = UniformDcs(4, 20000.0, 100000.0);
  dcs[2].observed_watts = 0.0;  // Fully idle.
  std::vector<double> shares = AllocateCampusBudgets(40000.0, dcs, config);
  // Equal split is 10k; the idle DC keeps at least 10% of it.
  EXPECT_GE(shares[2], 0.10 * 10000.0 - 1e-9);
}

TEST(CampusAllocatorTest, UnallocatableResidualStaysWithinContracts) {
  CampusAllocatorConfig config;
  config.policy = CampusAllocPolicy::kHeadroom;
  // Contracts sum below the campus total: shares saturate at contracts.
  auto dcs = UniformDcs(2, 5000.0, 8000.0);
  std::vector<double> shares = AllocateCampusBudgets(60000.0, dcs, config);
  EXPECT_NEAR(shares[0], 8000.0, 1e-9);
  EXPECT_NEAR(shares[1], 8000.0, 1e-9);
}

TEST(CampusAllocatorTest, DeterministicAcrossCalls) {
  CampusAllocatorConfig config;
  config.policy = CampusAllocPolicy::kHeadroom;
  auto dcs = UniformDcs(4, 12345.678, 98765.4);
  dcs[1].observed_watts = 23456.7;
  std::vector<double> a = AllocateCampusBudgets(70000.0, dcs, config);
  std::vector<double> b = AllocateCampusBudgets(70000.0, dcs, config);
  EXPECT_EQ(a, b);  // Bit-identical, not approximately equal.
}

TEST(CampusAllocatorTest, RejectsInvalidInputs) {
  CampusAllocatorConfig config;
  auto dcs = UniformDcs(2, 100.0, 1000.0);
  EXPECT_THROW(AllocateCampusBudgets(0.0, dcs, config), CheckFailure);
  EXPECT_THROW(AllocateCampusBudgets(1000.0, {}, config), CheckFailure);
  dcs[0].contract_watts = 0.0;
  EXPECT_THROW(AllocateCampusBudgets(1000.0, dcs, config), CheckFailure);
}

}  // namespace
}  // namespace ampere
