// Bit-identity goldens for the hot-path rebuild (interned telemetry
// handles, incremental power aggregation, pooled event core).
//
// A perf PR must not change *behavior*: the fig10-style grid ResultTable
// CSV and the chaos DecisionJournal CSV are captured from the pre-change
// tree at fixed seeds and committed under tests/golden/. These tests re-run
// the identical scenarios and compare bytes. Any optimization that changes
// float summation order, RNG draw order, or event ordering shows up here as
// a diff, not as a silent drift in every bench.
//
// Regenerating (only when a PR *intentionally* changes behavior):
//   AMPERE_REGEN_GOLDEN=1 ./build/tests/perf_identity_test
// then commit the rewritten files with an explanation.

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/controller.h"
#include "src/core/experiment.h"
#include "src/faults/fault_injector.h"
#include "src/faults/fault_plan.h"
#include "src/harness/grid.h"
#include "src/harness/runner.h"
#include "src/sched/scheduler.h"
#include "src/telemetry/power_monitor.h"
#include "src/workload/batch_workload.h"

#ifndef AMPERE_GOLDEN_DIR
#error "AMPERE_GOLDEN_DIR must be defined by the build"
#endif

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160416;

std::string GoldenPath(const std::string& name) {
  return std::string(AMPERE_GOLDEN_DIR) + "/" + name;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {};
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFileOrDie(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write golden " << path;
  out << content;
}

bool RegenRequested() {
  const char* env = std::getenv("AMPERE_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// Compares `actual` against the committed golden byte-for-byte, or rewrites
// the golden in regen mode. On mismatch prints the first differing line so
// the drift is actionable without a diff tool.
void ExpectMatchesGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (RegenRequested()) {
    WriteFileOrDie(path, actual);
    GTEST_LOG_(INFO) << "regenerated golden " << path;
    return;
  }
  const std::string expected = ReadFileOrEmpty(path);
  ASSERT_FALSE(expected.empty())
      << "missing golden " << path
      << " (run with AMPERE_REGEN_GOLDEN=1 to create it)";
  if (actual == expected) {
    SUCCEED();
    return;
  }
  // Locate the first differing line for the failure message.
  std::istringstream a(actual), e(expected);
  std::string la, le;
  size_t line = 0;
  while (true) {
    ++line;
    const bool ga = static_cast<bool>(std::getline(a, la));
    const bool ge = static_cast<bool>(std::getline(e, le));
    if (!ga && !ge) {
      break;
    }
    if (la != le || ga != ge) {
      FAIL() << name << " diverges from golden at line " << line
             << "\n  golden: " << (ge ? le : std::string("<eof>"))
             << "\n  actual: " << (ga ? la : std::string("<eof>"));
    }
  }
  FAIL() << name << " differs from golden (same lines, different bytes?)";
}

// --- Fig10-style grid ----------------------------------------------------

// A shrunk Figure-10 grid: the paper row topology, light and heavy arms,
// 4 h of measurement. Small enough for ctest, large enough that the
// controller freezes/unfreezes, the breaker observes, and DVFS reconciles
// tasks — i.e. every hot path this PR touches feeds these bytes.
ExperimentConfig Fig10StyleConfig(double target_power, double ar_sigma,
                                  uint64_t seed) {
  ExperimentConfig config;
  config.seed = seed;
  config.topology.num_rows = 1;
  config.topology.racks_per_row = 10;
  config.topology.servers_per_rack = 42;  // The 420-server paper row.
  config.topology.power_model.rated_watts = 250.0;
  config.topology.power_model.idle_fraction = 0.65;
  config.over_provision_ratio = 0.25;
  config.workload.arrivals.base_rate_per_min = ArrivalRateForNormalizedPower(
      config.topology, config.workload, target_power, 0.25);
  config.workload.arrivals.ar_sigma = ar_sigma;
  config.workload.arrivals.burst_prob = 0.012;
  config.workload.arrivals.burst_factor = 2.2;
  config.controller.effect = FreezeEffectModel(0.05);
  config.controller.et = EtEstimator::Constant(0.02);
  config.warmup = SimTime::Hours(1);
  config.duration = SimTime::Hours(4);
  return config;
}

TEST(PerfIdentityTest, Fig10GridResultTableMatchesGolden) {
  struct Arm {
    const char* name;
    double target_power;
    double ar_sigma;
  };
  const std::vector<Arm> arms = {
      {"light", 0.91, 0.035},
      {"heavy", 1.00, 0.015},
  };
  harness::RunnerOptions options;
  options.jobs = 2;
  auto grid = harness::RunGridOver(
      arms,
      [](const Arm& arm, size_t i) {
        return harness::GridMeta{arm.name, kSeed + i};
      },
      [](const Arm& arm, harness::RunContext& context) {
        ExperimentConfig config = Fig10StyleConfig(
            arm.target_power, arm.ar_sigma,
            kSeed + (arm.target_power > 0.95 ? 1 : 0));
        ExperimentResult result = RunExperimentToResult(config);
        context.Metric("u_mean", result.experiment.u_mean);
        context.Metric("u_max", result.experiment.u_max);
        context.Metric("P_mean", result.experiment.p_mean);
        context.Metric("P_max", result.experiment.p_max);
        context.Metric("violations", result.experiment.violations);
        context.Metric("ctl_P_max", result.control.p_max);
        context.Metric("ctl_violations", result.control.violations);
        context.Metric("gain_tpw", result.gain_tpw);
        context.Metric("jobs_completed",
                       static_cast<double>(result.jobs_completed));
        return result;
      },
      options);
  for (const harness::ResultRow& row : grid.table.rows()) {
    ASSERT_TRUE(row.ok) << row.scenario << ": " << row.error;
  }
  ExpectMatchesGolden("fig10_grid_result_table.csv", grid.table.ToCsv());
}

// --- Chaos DecisionJournal ----------------------------------------------

// One faulted closed loop (dropouts + stale/blackout windows + lossy RPCs)
// whose DecisionJournal CSV is the golden: it encodes per-tick observed
// power, margins, freeze decisions, degradation modes, and RPC accounting,
// so it is the most sensitive single artifact the repo has.
std::string RunChaosJournal() {
  TopologyConfig topology;
  topology.num_rows = 3;
  topology.racks_per_row = 2;
  topology.servers_per_rack = 6;  // 36 servers.
  topology.server_capacity = Resources{16.0, 64.0};

  Rng rng(kSeed);
  Simulation sim;
  DataCenter dc(topology, &sim);
  TimeSeriesDb db;
  Scheduler scheduler(&dc, SchedulerConfig{}, rng.Fork(1));
  PowerMonitor monitor(&dc, &db, PowerMonitorConfig{}, rng.Fork(2));
  std::vector<ServerId> all;
  for (int32_t s = 0; s < dc.num_servers(); ++s) {
    all.push_back(ServerId(s));
  }
  monitor.RegisterGroup("all", all);

  faults::FaultPlanConfig fault_config;
  fault_config.seed = kSeed + 7;
  fault_config.sample_dropout_prob = 0.20;
  fault_config.stale_windows_per_hour = 3.0;
  fault_config.stale_window_mean = SimTime::Minutes(3);
  fault_config.blackouts_per_hour = 2.0;
  fault_config.blackout_mean = SimTime::Minutes(4);
  fault_config.rpc_failure_prob = 0.20;
  faults::FaultPlan plan =
      faults::FaultPlan::Generate(fault_config, SimTime::Hours(7));
  faults::FaultInjector injector(plan);
  monitor.AttachFaultInjector(&injector);
  scheduler.AttachFaultInjector(&injector);

  JobIdAllocator ids;
  BatchWorkloadParams params;
  params.arrivals.base_rate_per_min = 40.0;
  BatchWorkload workload(params, &sim, &scheduler, &ids, rng.Fork(3));

  AmpereControllerConfig config;
  config.effect = FreezeEffectModel(0.01);
  config.et = EtEstimator::Constant(0.02);
  AmpereController controller(&scheduler, &monitor, config);
  double budget = dc.total_budget_watts() / 1.25;
  controller.AddDomain({"all", all, budget});

  workload.Start(SimTime());
  monitor.Start(SimTime::Minutes(1));
  controller.Start(&sim, SimTime::Minutes(1) + SimTime::Seconds(1),
                   SimTime::Minutes(1));
  sim.RunUntil(SimTime::Hours(6));
  return controller.journal().ToCsv();
}

TEST(PerfIdentityTest, ChaosDecisionJournalMatchesGolden) {
  ExpectMatchesGolden("chaos_decision_journal.csv", RunChaosJournal());
}

// --- Golden workload trace + golden replay -------------------------------
//
// The ampere.trace.v1 wire format is itself a compatibility surface: a
// serialization change (field order, endianness, lengths) would silently
// orphan every recorded trace. The committed golden trace pins the exact
// bytes; the replay golden pins what the closed loop does with them. Both
// regenerate together with AMPERE_REGEN_GOLDEN=1.

TraceData GoldenTraceData() {
  AdversarialTraceParams params;
  params.kind = AdversarialTraceParams::Kind::kBursts;
  params.seed = kSeed + 31;
  params.duration = SimTime::Hours(2) + SimTime::Minutes(30);
  params.base_rate_per_min = 24.0;
  params.burst_prob = 0.10;
  params.burst_factor = 4.0;
  return GenerateAdversarialTrace(params);
}

TEST(PerfIdentityTest, GoldenTraceBytesMatchGolden) {
  ExpectMatchesGolden("workload_trace_v1.trace",
                      SerializeTrace(GoldenTraceData()));
}

TEST(PerfIdentityTest, GoldenTraceReplayJournalMatchesGolden) {
  // Parse the *committed* golden bytes (not the in-memory generator output)
  // so this test fails if either the on-disk format or the replay semantics
  // drift. In regen mode the trace golden may not exist yet, so fall back
  // to the generator — the bytes test above rewrites the file in the same
  // run.
  const std::string bytes = ReadFileOrEmpty(GoldenPath("workload_trace_v1.trace"));
  TraceData trace;
  if (!bytes.empty()) {
    TraceParseResult parsed = ParseTrace(bytes);
    ASSERT_TRUE(parsed.ok()) << parsed.message;
    trace = std::move(parsed.trace);
  } else {
    ASSERT_TRUE(RegenRequested())
        << "missing golden " << GoldenPath("workload_trace_v1.trace");
    trace = GoldenTraceData();
  }

  ExperimentConfig config;
  config.seed = kSeed + 31;
  config.topology.num_rows = 2;
  config.topology.racks_per_row = 3;
  config.topology.servers_per_rack = 8;  // 48 servers.
  config.controller.effect = FreezeEffectModel(0.05);
  config.controller.et = EtEstimator::Constant(0.02);
  config.warmup = SimTime::Minutes(30);
  config.duration = SimTime::Hours(2);
  config.trace.replay_data = std::make_shared<const TraceData>(std::move(trace));
  // A curtailment mid-window, so the golden also pins the P(t) path.
  config.budget_schedule.AddStep(SimTime::Minutes(45), SimTime::Minutes(75),
                                 0.9);

  ControlledExperiment experiment(config);
  const ExperimentResult result = experiment.Run();
  ASSERT_NE(experiment.controller(), nullptr);
  EXPECT_GT(result.trace_jobs_replayed, 0u);
  EXPECT_EQ(result.budget_scale_min, 0.9);
  ExpectMatchesGolden("trace_replay_decision_journal.csv",
                      experiment.controller()->journal().ToCsv());
}

}  // namespace
}  // namespace ampere
