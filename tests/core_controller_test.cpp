#include "src/core/controller.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/faults/fault_injector.h"
#include "src/faults/fault_plan.h"

namespace ampere {
namespace {

// Fixture: one 8-server row, noiseless monitor, controller over all servers.
struct ControllerFixture {
  Simulation sim;
  DataCenter dc;
  TimeSeriesDb db;
  Scheduler scheduler;
  PowerMonitor monitor;

  static TopologyConfig Topology() {
    TopologyConfig config;
    config.num_rows = 1;
    config.racks_per_row = 1;
    config.servers_per_rack = 8;
    config.server_capacity = Resources{16.0, 64.0};
    return config;
  }
  static PowerMonitorConfig MonitorConfig() {
    PowerMonitorConfig config;
    config.noise_sigma_watts = 0.0;
    config.quantize_to_watts = false;
    return config;
  }

  ControllerFixture()
      : dc(Topology(), &sim), scheduler(&dc, SchedulerConfig{}, Rng(3)),
        monitor(&dc, &db, MonitorConfig(), Rng(4)) {
    std::vector<ServerId> all;
    for (int32_t s = 0; s < dc.num_servers(); ++s) {
      all.push_back(ServerId(s));
    }
    monitor.RegisterGroup("row", all);
  }

  std::vector<ServerId> AllServers() const {
    std::vector<ServerId> all;
    for (int32_t s = 0; s < dc.num_servers(); ++s) {
      all.push_back(ServerId(s));
    }
    return all;
  }

  AmpereControllerConfig Config(double kr, double et) const {
    AmpereControllerConfig config;
    config.effect = FreezeEffectModel(kr);
    config.et = EtEstimator::Constant(et);
    return config;
  }

  // Loads server `s` with `cores` of long-running work.
  void Load(int32_t s, double cores) {
    dc.PlaceTask(ServerId(s), TaskSpec{JobId(1000 + s),
                                       Resources{cores, cores},
                                       SimTime::Hours(100)});
  }

  size_t FrozenCount() const {
    size_t n = 0;
    for (int32_t s = 0; s < dc.num_servers(); ++s) {
      if (dc.server(ServerId(s)).frozen()) {
        ++n;
      }
    }
    return n;
  }
};

TEST(ControllerTest, NoActionBelowThreshold) {
  ControllerFixture f;
  AmpereController controller(&f.scheduler, &f.monitor, f.Config(0.05, 0.02));
  // Budget = full rated power: idle cluster is far below threshold.
  controller.AddDomain(
      {"row", f.AllServers(), 8 * 250.0});
  f.monitor.SampleOnce(SimTime::Minutes(1));
  controller.Tick(SimTime::Minutes(1));
  EXPECT_EQ(f.FrozenCount(), 0u);
  EXPECT_DOUBLE_EQ(controller.freeze_ratio(0), 0.0);
}

TEST(ControllerTest, FreezesWhenPowerExceedsThreshold) {
  ControllerFixture f;
  // Load all servers to 50 % -> power = 8 * (162.5 + 43.75) = 1650 W.
  for (int32_t s = 0; s < 8; ++s) {
    f.Load(s, 8.0);
  }
  AmpereController controller(&f.scheduler, &f.monitor, f.Config(0.05, 0.02));
  // Budget 1600 W: normalized power 1.031, over the 0.98 threshold.
  controller.AddDomain({"row", f.AllServers(), 1600.0});
  f.monitor.SampleOnce(SimTime::Minutes(1));
  controller.Tick(SimTime::Minutes(1));
  // u = min((1.031 + 0.02 - 1)/0.05, 0.5) = 0.5 -> floor(0.5*8) = 4 frozen.
  EXPECT_EQ(f.FrozenCount(), 4u);
  EXPECT_DOUBLE_EQ(controller.freeze_ratio(0), 0.5);
  EXPECT_EQ(controller.freeze_ops(), 4u);
}

TEST(ControllerTest, FreezesHighestPowerServersFirst) {
  ControllerFixture f;
  // Distinct loads: servers 0..7 get increasing utilization.
  for (int32_t s = 0; s < 8; ++s) {
    f.Load(s, 2.0 * s);
  }
  AmpereController controller(&f.scheduler, &f.monitor, f.Config(0.05, 0.02));
  double power = f.dc.row_power_watts(RowId(0));
  // Choose a budget so that u lands at ~0.25 -> 2 servers.
  controller.AddDomain({"row", f.AllServers(), power / 1.0});
  f.monitor.SampleOnce(SimTime::Minutes(1));
  controller.Tick(SimTime::Minutes(1));
  // Normalized power == 1.0 > threshold 0.98; u = (1.0+0.02-1)/0.05 = 0.4
  // -> floor(3.2) = 3 frozen, and they must be the three hottest (7, 6, 5).
  EXPECT_EQ(f.FrozenCount(), 3u);
  EXPECT_TRUE(f.dc.server(ServerId(7)).frozen());
  EXPECT_TRUE(f.dc.server(ServerId(6)).frozen());
  EXPECT_TRUE(f.dc.server(ServerId(5)).frozen());
}

TEST(ControllerTest, ReleasesAllWhenBackUnderThreshold) {
  ControllerFixture f;
  for (int32_t s = 0; s < 8; ++s) {
    f.dc.PlaceTask(ServerId(s), TaskSpec{JobId(2000 + s),
                                         Resources{8.0, 8.0},
                                         SimTime::Minutes(10)});
  }
  AmpereController controller(&f.scheduler, &f.monitor, f.Config(0.05, 0.02));
  controller.AddDomain({"row", f.AllServers(), 1600.0});
  f.monitor.SampleOnce(SimTime::Minutes(1));
  controller.Tick(SimTime::Minutes(1));
  ASSERT_GT(f.FrozenCount(), 0u);
  // All tasks complete at 10 min; power returns to idle.
  f.sim.RunUntil(SimTime::Minutes(11));
  f.monitor.SampleOnce(SimTime::Minutes(11));
  controller.Tick(SimTime::Minutes(11));
  EXPECT_EQ(f.FrozenCount(), 0u);
  EXPECT_GT(controller.unfreeze_ops(), 0u);
}

TEST(ControllerTest, HysteresisKeepsFrozenSetStable) {
  ControllerFixture f;
  for (int32_t s = 0; s < 8; ++s) {
    f.Load(s, 8.0);
  }
  AmpereController controller(&f.scheduler, &f.monitor, f.Config(0.05, 0.02));
  controller.AddDomain({"row", f.AllServers(), 1600.0});
  f.monitor.SampleOnce(SimTime::Minutes(1));
  controller.Tick(SimTime::Minutes(1));
  uint64_t ops_after_first = controller.freeze_ops() +
                             controller.unfreeze_ops();
  // Re-tick with identical power: no churn at all.
  for (int m = 2; m <= 5; ++m) {
    f.monitor.SampleOnce(SimTime::Minutes(m));
    controller.Tick(SimTime::Minutes(m));
  }
  EXPECT_EQ(controller.freeze_ops() + controller.unfreeze_ops(),
            ops_after_first);
}

TEST(ControllerTest, StatelessRebuildMatchesSchedulerFlags) {
  ControllerFixture f;
  for (int32_t s = 0; s < 8; ++s) {
    f.Load(s, 8.0);
  }
  AmpereController first(&f.scheduler, &f.monitor, f.Config(0.05, 0.02));
  first.AddDomain({"row", f.AllServers(), 1600.0});
  f.monitor.SampleOnce(SimTime::Minutes(1));
  first.Tick(SimTime::Minutes(1));
  size_t frozen_before = f.FrozenCount();
  ASSERT_GT(frozen_before, 0u);

  // "Failover": a replacement controller rebuilds state from the scheduler.
  AmpereController replacement(&f.scheduler, &f.monitor,
                               f.Config(0.05, 0.02));
  replacement.AddDomain({"row", f.AllServers(), 1600.0});
  EXPECT_EQ(replacement.frozen_count(0), 0u);
  replacement.RebuildStateFromScheduler();
  EXPECT_EQ(replacement.frozen_count(0), frozen_before);
  // And it continues controlling without churn.
  f.monitor.SampleOnce(SimTime::Minutes(2));
  replacement.Tick(SimTime::Minutes(2));
  EXPECT_EQ(f.FrozenCount(), frozen_before);
}

TEST(ControllerTest, MaxFreezeRatioCapsControl) {
  ControllerFixture f;
  for (int32_t s = 0; s < 8; ++s) {
    f.Load(s, 16.0);  // Full blast: power = 2000 W.
  }
  AmpereControllerConfig config = f.Config(0.01, 0.02);  // Tiny kr.
  config.max_freeze_ratio = 0.25;
  AmpereController controller(&f.scheduler, &f.monitor, config);
  controller.AddDomain({"row", f.AllServers(), 1600.0});
  f.monitor.SampleOnce(SimTime::Minutes(1));
  controller.Tick(SimTime::Minutes(1));
  EXPECT_EQ(f.FrozenCount(), 2u);  // floor(0.25 * 8).
}

TEST(ControllerTest, PeriodicStartTicksOnSchedule) {
  ControllerFixture f;
  AmpereController controller(&f.scheduler, &f.monitor, f.Config(0.05, 0.02));
  controller.AddDomain({"row", f.AllServers(), 2000.0});
  f.monitor.Start(SimTime::Minutes(1));
  controller.Start(&f.sim, SimTime::Minutes(1) + SimTime::Seconds(1));
  f.sim.RunUntil(SimTime::Minutes(5.5));
  EXPECT_EQ(controller.ticks(), 5u);
}

TEST(ControllerTest, MultipleDomainsControlledIndependently) {
  Simulation sim;
  TopologyConfig topo;
  topo.num_rows = 2;
  topo.racks_per_row = 1;
  topo.servers_per_rack = 4;
  DataCenter dc(topo, &sim);
  TimeSeriesDb db;
  Scheduler scheduler(&dc, SchedulerConfig{}, Rng(5));
  PowerMonitorConfig mc;
  mc.noise_sigma_watts = 0.0;
  mc.quantize_to_watts = false;
  PowerMonitor monitor(&dc, &db, mc, Rng(6));
  std::vector<ServerId> row0{ServerId(0), ServerId(1), ServerId(2),
                             ServerId(3)};
  std::vector<ServerId> row1{ServerId(4), ServerId(5), ServerId(6),
                             ServerId(7)};
  monitor.RegisterGroup("row0", row0);
  monitor.RegisterGroup("row1", row1);
  // Row 0 hot, row 1 idle.
  for (int32_t s = 0; s < 4; ++s) {
    dc.PlaceTask(ServerId(s), TaskSpec{JobId(s), Resources{16.0, 16.0},
                                       SimTime::Hours(10)});
  }
  AmpereControllerConfig config;
  config.effect = FreezeEffectModel(0.05);
  config.et = EtEstimator::Constant(0.02);
  AmpereController controller(&scheduler, &monitor, config);
  controller.AddDomain({"row0", row0, 900.0});
  controller.AddDomain({"row1", row1, 900.0});
  monitor.SampleOnce(SimTime::Minutes(1));
  controller.Tick(SimTime::Minutes(1));
  EXPECT_GT(controller.frozen_count(0), 0u);
  EXPECT_EQ(controller.frozen_count(1), 0u);
}

// --- Graceful degradation under faulty telemetry / fallible RPCs ---

TEST(ControllerDegradedTest, StaleReadingWidensEtAndStillActs) {
  ControllerFixture f;
  for (int32_t s = 0; s < 8; ++s) {
    f.Load(s, 8.0);  // Power = 1650 W.
  }
  // Budget 1750 -> p = 0.943. Fresh threshold 1 - 0.03 = 0.97: no action.
  AmpereController controller(&f.scheduler, &f.monitor, f.Config(0.05, 0.03));
  controller.AddDomain({"row", f.AllServers(), 1750.0});
  f.monitor.SampleOnce(SimTime::Minutes(1));
  controller.Tick(SimTime::Minutes(1));
  EXPECT_EQ(f.FrozenCount(), 0u);
  EXPECT_EQ(controller.degraded_ticks(), 0u);

  // No new sample before the tick at minute 5: the reading is 4 minutes old
  // (stale, not yet blackout). E_t widens 4x to 0.12, threshold drops to
  // 0.88 < 0.943, u = (0.943 + 0.12 - 1)/0.05 = 1.26 -> capped at 0.5.
  controller.Tick(SimTime::Minutes(5));
  EXPECT_EQ(f.FrozenCount(), 4u);
  EXPECT_EQ(controller.stale_fallbacks(), 1u);
  EXPECT_EQ(controller.degraded_ticks(), 1u);
  EXPECT_EQ(controller.blackout_skips(), 0u);

  // The journal records the degraded tick with its age and widened margin.
  auto records = controller.journal().Query(
      SimTime::Minutes(5), SimTime::Minutes(5) + SimTime::Seconds(1));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].degraded, obs::DegradedMode::kStaleFallback);
  EXPECT_EQ(records[0].reading_age_us, SimTime::Minutes(4).micros());
  EXPECT_DOUBLE_EQ(records[0].et_effective, 0.12);
}

TEST(ControllerDegradedTest, BlackoutSkipHoldsFrozenSet) {
  ControllerFixture f;
  for (int32_t s = 0; s < 8; ++s) {
    f.Load(s, 16.0);  // Full blast.
  }
  AmpereController controller(&f.scheduler, &f.monitor, f.Config(0.05, 0.02));
  controller.AddDomain({"row", f.AllServers(), 1600.0});
  f.monitor.SampleOnce(SimTime::Minutes(1));
  controller.Tick(SimTime::Minutes(1));
  const size_t frozen = f.FrozenCount();
  ASSERT_GT(frozen, 0u);
  const uint64_t ops =
      controller.freeze_ops() + controller.unfreeze_ops();

  // Reading is 9 minutes old at the next tick — beyond blackout_after. The
  // controller holds the frozen set rather than act on garbage.
  controller.Tick(SimTime::Minutes(10));
  EXPECT_EQ(f.FrozenCount(), frozen);
  EXPECT_EQ(controller.freeze_ops() + controller.unfreeze_ops(), ops);
  EXPECT_EQ(controller.blackout_skips(), 1u);
  auto records = controller.journal().Query(
      SimTime::Minutes(10), SimTime::Minutes(10) + SimTime::Seconds(1));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].degraded, obs::DegradedMode::kBlackoutSkip);
}

TEST(ControllerDegradedTest, NeverSampledDomainSkipsInsteadOfGuessing) {
  ControllerFixture f;
  for (int32_t s = 0; s < 8; ++s) {
    f.Load(s, 16.0);
  }
  AmpereController controller(&f.scheduler, &f.monitor, f.Config(0.05, 0.02));
  controller.AddDomain({"row", f.AllServers(), 1600.0});
  // Tick with no sample ever taken: the group's stamp is the never-sampled
  // sentinel, so the tick must skip, not freeze off a zero reading.
  controller.Tick(SimTime::Minutes(1));
  EXPECT_EQ(f.FrozenCount(), 0u);
  EXPECT_EQ(controller.blackout_skips(), 1u);
  EXPECT_EQ(controller.freeze_ops(), 0u);
}

TEST(ControllerDegradedTest, FreezeRpcGiveUpLeavesConsistentBookkeeping) {
  ControllerFixture f;
  for (int32_t s = 0; s < 8; ++s) {
    f.Load(s, 16.0);
  }
  faults::FaultPlanConfig chaos;
  chaos.rpc_failure_prob = 1.0;  // Every attempt fails; retries exhaust.
  faults::FaultInjector injector(
      faults::FaultPlan::Generate(chaos, SimTime::Hours(1)));
  f.scheduler.AttachFaultInjector(&injector);

  AmpereController controller(&f.scheduler, &f.monitor, f.Config(0.05, 0.02));
  controller.AddDomain({"row", f.AllServers(), 1600.0});
  f.monitor.SampleOnce(SimTime::Minutes(1));
  controller.Tick(SimTime::Minutes(1));

  // Nothing froze, and the cache agrees with the scheduler's flags.
  EXPECT_EQ(f.FrozenCount(), 0u);
  EXPECT_EQ(controller.frozen_count(0), 0u);
  EXPECT_EQ(controller.freeze_ops(), 0u);
  EXPECT_GT(controller.rpc_giveups(), 0u);
  EXPECT_GT(controller.rpc_failures(), 0u);
  // With prob 1, every attempt drawn fails and retries ran to exhaustion.
  EXPECT_EQ(injector.counts().rpc_attempts, injector.counts().rpc_failures);
  EXPECT_EQ(injector.counts().rpc_attempts % 3, 0u);  // rpc_max_attempts = 3.
  // The adversity is journaled on the tick's record.
  auto records = controller.journal().Query(
      SimTime::Minutes(1), SimTime::Minutes(1) + SimTime::Seconds(1));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_GT(records[0].rpc_giveups, 0u);
}

TEST(ControllerDegradedTest, UnfreezeRpcFailureKeepsServerInFrozenSet) {
  ControllerFixture f;
  for (int32_t s = 0; s < 8; ++s) {
    f.dc.PlaceTask(ServerId(s), TaskSpec{JobId(3000 + s),
                                         Resources{16.0, 16.0},
                                         SimTime::Minutes(10)});
  }
  AmpereController controller(&f.scheduler, &f.monitor, f.Config(0.05, 0.02));
  controller.AddDomain({"row", f.AllServers(), 1600.0});
  f.monitor.SampleOnce(SimTime::Minutes(1));
  controller.Tick(SimTime::Minutes(1));
  const size_t frozen = f.FrozenCount();
  ASSERT_GT(frozen, 0u);

  // Load drains; unfreezes are due — but every RPC now fails.
  faults::FaultPlanConfig chaos;
  chaos.rpc_failure_prob = 1.0;
  faults::FaultInjector injector(
      faults::FaultPlan::Generate(chaos, SimTime::Hours(1)));
  f.scheduler.AttachFaultInjector(&injector);
  f.sim.RunUntil(SimTime::Minutes(11));
  f.monitor.SampleOnce(SimTime::Minutes(11));
  controller.Tick(SimTime::Minutes(11));

  // Failed unfreezes keep the servers frozen AND in the cached set — the
  // bookkeeping must track reality, not intent.
  EXPECT_EQ(f.FrozenCount(), frozen);
  EXPECT_EQ(controller.frozen_count(0), frozen);
  EXPECT_EQ(controller.unfreeze_ops(), 0u);
  EXPECT_GT(controller.rpc_giveups(), 0u);

  // RPCs recover: the next tick retries and drains the frozen set.
  f.scheduler.AttachFaultInjector(nullptr);
  f.monitor.SampleOnce(SimTime::Minutes(12));
  controller.Tick(SimTime::Minutes(12));
  EXPECT_EQ(f.FrozenCount(), 0u);
  EXPECT_EQ(controller.frozen_count(0), 0u);
}

}  // namespace
}  // namespace ampere
