#include "src/power/dvfs.h"

#include <gtest/gtest.h>

#include "src/common/check.h"

namespace ampere {
namespace {

TEST(DvfsLadderTest, DefaultLadderSpansHalfToFull) {
  DvfsLadder ladder;
  EXPECT_DOUBLE_EQ(ladder.min_multiplier(), 0.5);
  EXPECT_DOUBLE_EQ(ladder.steps().back(), 1.0);
}

TEST(DvfsLadderTest, ClampDownRoundsDown) {
  DvfsLadder ladder({0.5, 0.75, 1.0});
  EXPECT_DOUBLE_EQ(ladder.ClampDown(0.9), 0.75);
  EXPECT_DOUBLE_EQ(ladder.ClampDown(0.75), 0.75);
  EXPECT_DOUBLE_EQ(ladder.ClampDown(0.74), 0.5);
  EXPECT_DOUBLE_EQ(ladder.ClampDown(1.0), 1.0);
}

TEST(DvfsLadderTest, BelowLadderClampsToMinimum) {
  DvfsLadder ladder({0.5, 1.0});
  EXPECT_DOUBLE_EQ(ladder.ClampDown(0.1), 0.5);
  EXPECT_DOUBLE_EQ(ladder.ClampDown(0.0), 0.5);
}

TEST(DvfsLadderTest, InvalidLaddersThrow) {
  EXPECT_THROW(DvfsLadder(std::vector<double>{}), CheckFailure);
  EXPECT_THROW(DvfsLadder({1.0, 0.5}), CheckFailure);       // Unsorted.
  EXPECT_THROW(DvfsLadder({0.5, 0.9}), CheckFailure);       // Missing 1.0.
  EXPECT_THROW(DvfsLadder({0.0, 1.0}), CheckFailure);       // Zero step.
}

TEST(ComputeRowCapTest, UnderBudgetNoThrottle) {
  DvfsLadder ladder;
  CapDecision d = ComputeRowCap(1000.0, 500.0, 2000.0, ladder);
  EXPECT_FALSE(d.engaged);
  EXPECT_DOUBLE_EQ(d.throttle, 1.0);
}

TEST(ComputeRowCapTest, ExactBudgetNoThrottle) {
  DvfsLadder ladder;
  CapDecision d = ComputeRowCap(1000.0, 1000.0, 2000.0, ladder);
  EXPECT_FALSE(d.engaged);
}

TEST(ComputeRowCapTest, OverBudgetPicksLargestSafeStep) {
  DvfsLadder ladder({0.5, 0.6, 0.7, 0.8, 0.9, 1.0});
  // idle 1000 + dyn 1000 vs budget 1750: need t <= 0.75 -> step 0.7.
  CapDecision d = ComputeRowCap(1000.0, 1000.0, 1750.0, ladder);
  EXPECT_TRUE(d.engaged);
  EXPECT_DOUBLE_EQ(d.throttle, 0.7);
  // Resulting power honors the budget.
  EXPECT_LE(1000.0 + 1000.0 * d.throttle, 1750.0);
}

TEST(ComputeRowCapTest, IdleFloorAboveBudgetCapsAtMinimum) {
  DvfsLadder ladder;
  CapDecision d = ComputeRowCap(2000.0, 500.0, 1500.0, ladder);
  EXPECT_TRUE(d.engaged);
  EXPECT_DOUBLE_EQ(d.throttle, 0.5);
}

TEST(ComputeRowCapTest, ZeroDynamicOverBudgetCapsAtMinimum) {
  DvfsLadder ladder;
  CapDecision d = ComputeRowCap(2000.0, 0.0, 1500.0, ladder);
  EXPECT_TRUE(d.engaged);
  EXPECT_DOUBLE_EQ(d.throttle, 0.5);
}

// Property sweep: for any overload ratio, the chosen step never exceeds the
// exact requirement (caps are honored, never "rounded up").
class RowCapSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(RowCapSweepTest, ThrottleNeverExceedsRequirement) {
  DvfsLadder ladder;
  double budget = GetParam();
  double idle = 1000.0;
  double dynamic = 800.0;
  CapDecision d = ComputeRowCap(idle, dynamic, budget, ladder);
  if (budget >= idle + dynamic) {
    EXPECT_FALSE(d.engaged);
  } else if (budget > idle + dynamic * ladder.min_multiplier()) {
    EXPECT_LE(idle + dynamic * d.throttle, budget + 1e-9);
  } else {
    EXPECT_DOUBLE_EQ(d.throttle, ladder.min_multiplier());
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, RowCapSweepTest,
                         ::testing::Values(900.0, 1200.0, 1400.0, 1500.0,
                                           1650.0, 1799.0, 1800.0, 2000.0));

}  // namespace
}  // namespace ampere
