#include "src/telemetry/power_monitor.h"

#include <gtest/gtest.h>
#include <cmath>

#include "src/common/check.h"

namespace ampere {
namespace {

TopologyConfig SmallTopology() {
  TopologyConfig config;
  config.num_rows = 2;
  config.racks_per_row = 1;
  config.servers_per_rack = 4;
  return config;
}

PowerMonitorConfig NoiselessConfig() {
  PowerMonitorConfig config;
  config.noise_sigma_watts = 0.0;
  config.quantize_to_watts = false;
  return config;
}

TEST(PowerMonitorTest, SamplesEveryMinute) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  TimeSeriesDb db;
  PowerMonitor monitor(&dc, &db, NoiselessConfig(), Rng(1));
  monitor.Start(SimTime::Minutes(1));
  sim.RunUntil(SimTime::Minutes(10.5));
  EXPECT_EQ(monitor.samples_taken(), 10u);
  EXPECT_EQ(db.Series(PowerMonitor::RowSeries(RowId(0))).size(), 10u);
  EXPECT_EQ(db.Series(PowerMonitor::kTotalSeries).size(), 10u);
}

TEST(PowerMonitorTest, NoiselessReadingsMatchTruth) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  TimeSeriesDb db;
  PowerMonitor monitor(&dc, &db, NoiselessConfig(), Rng(1));
  dc.PlaceTask(ServerId(0), TaskSpec{JobId(1), Resources{8.0, 8.0},
                                     SimTime::Hours(2)});
  monitor.SampleOnce(SimTime::Minutes(1));
  EXPECT_NEAR(monitor.LatestServerWatts(ServerId(0)),
              dc.server_power_watts(ServerId(0)), 1e-9);
  EXPECT_NEAR(monitor.LatestRowWatts(RowId(0)),
              dc.row_power_watts(RowId(0)), 1e-9);
}

TEST(PowerMonitorTest, QuantizationRoundsToWholeWatts) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  TimeSeriesDb db;
  PowerMonitorConfig config;
  config.noise_sigma_watts = 0.0;
  config.quantize_to_watts = true;
  PowerMonitor monitor(&dc, &db, config, Rng(1));
  monitor.SampleOnce(SimTime::Minutes(1));
  double reading = monitor.LatestServerWatts(ServerId(0));
  EXPECT_DOUBLE_EQ(reading, std::round(reading));
}

TEST(PowerMonitorTest, NoiseAveragesOut) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  TimeSeriesDb db;
  PowerMonitorConfig config;
  config.noise_sigma_watts = 3.0;
  config.quantize_to_watts = false;
  PowerMonitor monitor(&dc, &db, config, Rng(7));
  double truth = dc.server_power_watts(ServerId(0));
  double sum = 0.0;
  const int n = 2000;
  for (int i = 1; i <= n; ++i) {
    monitor.SampleOnce(SimTime::Minutes(i));
    sum += monitor.LatestServerWatts(ServerId(0));
  }
  EXPECT_NEAR(sum / n, truth, 0.3);
}

TEST(PowerMonitorTest, GroupAggregation) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  TimeSeriesDb db;
  PowerMonitor monitor(&dc, &db, NoiselessConfig(), Rng(1));
  monitor.RegisterGroup("evens", {ServerId(0), ServerId(2), ServerId(4),
                                  ServerId(6)});
  monitor.SampleOnce(SimTime::Minutes(1));
  double expected = 4 * dc.server_power_watts(ServerId(0));
  EXPECT_NEAR(monitor.LatestGroupWatts("evens"), expected, 1e-9);
  EXPECT_EQ(db.Series(PowerMonitor::GroupSeries("evens")).size(), 1u);
}

TEST(PowerMonitorTest, UnknownGroupThrows) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  TimeSeriesDb db;
  PowerMonitor monitor(&dc, &db, NoiselessConfig(), Rng(1));
  EXPECT_THROW(monitor.LatestGroupWatts("nope"), CheckFailure);
}

TEST(PowerMonitorTest, RegisterGroupAfterStartThrows) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  TimeSeriesDb db;
  PowerMonitor monitor(&dc, &db, NoiselessConfig(), Rng(1));
  monitor.Start(SimTime::Minutes(1));
  EXPECT_THROW(monitor.RegisterGroup("late", {ServerId(0)}), CheckFailure);
}

TEST(PowerMonitorTest, PerServerSeriesOptIn) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  TimeSeriesDb db;
  PowerMonitorConfig config = NoiselessConfig();
  config.record_servers = true;
  PowerMonitor monitor(&dc, &db, config, Rng(1));
  monitor.SampleOnce(SimTime::Minutes(1));
  EXPECT_EQ(db.Series(PowerMonitor::ServerSeries(ServerId(3))).size(), 1u);
}

TEST(PowerMonitorTest, RackSeriesSumToRowSeries) {
  Simulation sim;
  TopologyConfig topo = SmallTopology();
  topo.racks_per_row = 2;
  DataCenter dc(topo, &sim);
  TimeSeriesDb db;
  PowerMonitor monitor(&dc, &db, NoiselessConfig(), Rng(1));
  dc.PlaceTask(ServerId(1), TaskSpec{JobId(1), Resources{8.0, 8.0},
                                     SimTime::Hours(1)});
  monitor.SampleOnce(SimTime::Minutes(1));
  double rack_sum =
      db.Latest(PowerMonitor::RackSeries(RackId(0)))->value +
      db.Latest(PowerMonitor::RackSeries(RackId(1)))->value;
  double row = db.Latest(PowerMonitor::RowSeries(RowId(0)))->value;
  EXPECT_NEAR(rack_sum, row, 1e-9);
}

}  // namespace
}  // namespace ampere
