#include "src/telemetry/power_monitor.h"

#include <gtest/gtest.h>
#include <cmath>
#include <string>

#include "src/common/check.h"
#include "src/common/thread_pool.h"
#include "src/faults/fault_injector.h"
#include "src/faults/fault_plan.h"

namespace ampere {
namespace {

TopologyConfig SmallTopology() {
  TopologyConfig config;
  config.num_rows = 2;
  config.racks_per_row = 1;
  config.servers_per_rack = 4;
  return config;
}

PowerMonitorConfig NoiselessConfig() {
  PowerMonitorConfig config;
  config.noise_sigma_watts = 0.0;
  config.quantize_to_watts = false;
  return config;
}

TEST(PowerMonitorTest, SamplesEveryMinute) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  TimeSeriesDb db;
  PowerMonitor monitor(&dc, &db, NoiselessConfig(), Rng(1));
  monitor.Start(SimTime::Minutes(1));
  sim.RunUntil(SimTime::Minutes(10.5));
  EXPECT_EQ(monitor.samples_taken(), 10u);
  EXPECT_EQ(db.Series(PowerMonitor::RowSeries(RowId(0))).size(), 10u);
  EXPECT_EQ(db.Series(PowerMonitor::kTotalSeries).size(), 10u);
}

TEST(PowerMonitorTest, NoiselessReadingsMatchTruth) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  TimeSeriesDb db;
  PowerMonitor monitor(&dc, &db, NoiselessConfig(), Rng(1));
  dc.PlaceTask(ServerId(0), TaskSpec{JobId(1), Resources{8.0, 8.0},
                                     SimTime::Hours(2)});
  monitor.SampleOnce(SimTime::Minutes(1));
  EXPECT_NEAR(monitor.LatestServerWatts(ServerId(0)),
              dc.server_power_watts(ServerId(0)), 1e-9);
  EXPECT_NEAR(monitor.LatestRowWatts(RowId(0)),
              dc.row_power_watts(RowId(0)), 1e-9);
}

TEST(PowerMonitorTest, QuantizationRoundsToWholeWatts) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  TimeSeriesDb db;
  PowerMonitorConfig config;
  config.noise_sigma_watts = 0.0;
  config.quantize_to_watts = true;
  PowerMonitor monitor(&dc, &db, config, Rng(1));
  monitor.SampleOnce(SimTime::Minutes(1));
  double reading = monitor.LatestServerWatts(ServerId(0));
  EXPECT_DOUBLE_EQ(reading, std::round(reading));
}

TEST(PowerMonitorTest, NoiseAveragesOut) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  TimeSeriesDb db;
  PowerMonitorConfig config;
  config.noise_sigma_watts = 3.0;
  config.quantize_to_watts = false;
  PowerMonitor monitor(&dc, &db, config, Rng(7));
  double truth = dc.server_power_watts(ServerId(0));
  double sum = 0.0;
  const int n = 2000;
  for (int i = 1; i <= n; ++i) {
    monitor.SampleOnce(SimTime::Minutes(i));
    sum += monitor.LatestServerWatts(ServerId(0));
  }
  EXPECT_NEAR(sum / n, truth, 0.3);
}

TEST(PowerMonitorTest, GroupAggregation) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  TimeSeriesDb db;
  PowerMonitor monitor(&dc, &db, NoiselessConfig(), Rng(1));
  monitor.RegisterGroup("evens", {ServerId(0), ServerId(2), ServerId(4),
                                  ServerId(6)});
  monitor.SampleOnce(SimTime::Minutes(1));
  double expected = 4 * dc.server_power_watts(ServerId(0));
  EXPECT_NEAR(monitor.LatestGroupWatts("evens"), expected, 1e-9);
  EXPECT_EQ(db.Series(PowerMonitor::GroupSeries("evens")).size(), 1u);
}

TEST(PowerMonitorTest, UnknownGroupThrows) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  TimeSeriesDb db;
  PowerMonitor monitor(&dc, &db, NoiselessConfig(), Rng(1));
  EXPECT_THROW(monitor.LatestGroupWatts("nope"), CheckFailure);
}

TEST(PowerMonitorTest, RegisterGroupAfterStartThrows) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  TimeSeriesDb db;
  PowerMonitor monitor(&dc, &db, NoiselessConfig(), Rng(1));
  monitor.Start(SimTime::Minutes(1));
  EXPECT_THROW(monitor.RegisterGroup("late", {ServerId(0)}), CheckFailure);
}

TEST(PowerMonitorTest, PerServerSeriesOptIn) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  TimeSeriesDb db;
  PowerMonitorConfig config = NoiselessConfig();
  config.record_servers = true;
  PowerMonitor monitor(&dc, &db, config, Rng(1));
  monitor.SampleOnce(SimTime::Minutes(1));
  EXPECT_EQ(db.Series(PowerMonitor::ServerSeries(ServerId(3))).size(), 1u);
}

TEST(PowerMonitorTest, RackSeriesSumToRowSeries) {
  Simulation sim;
  TopologyConfig topo = SmallTopology();
  topo.racks_per_row = 2;
  DataCenter dc(topo, &sim);
  TimeSeriesDb db;
  PowerMonitor monitor(&dc, &db, NoiselessConfig(), Rng(1));
  dc.PlaceTask(ServerId(1), TaskSpec{JobId(1), Resources{8.0, 8.0},
                                     SimTime::Hours(1)});
  monitor.SampleOnce(SimTime::Minutes(1));
  double rack_sum =
      db.Latest(PowerMonitor::RackSeries(RackId(0)))->value +
      db.Latest(PowerMonitor::RackSeries(RackId(1)))->value;
  double row = db.Latest(PowerMonitor::RowSeries(RowId(0)))->value;
  EXPECT_NEAR(rack_sum, row, 1e-9);
}

TEST(PowerMonitorTest, SeriesPrefixNamespacesEverything) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  TimeSeriesDb db;
  PowerMonitorConfig config = NoiselessConfig();
  config.series_prefix = "campus/dc7/";
  config.record_servers = true;
  PowerMonitor monitor(&dc, &db, config, Rng(1));
  monitor.RegisterGroup("evens", {ServerId(0), ServerId(2)});
  monitor.SampleOnce(SimTime::Minutes(1));
  EXPECT_EQ(db.Series("campus/dc7/" + PowerMonitor::RowSeries(RowId(0))).size(),
            1u);
  EXPECT_EQ(
      db.Series("campus/dc7/" + PowerMonitor::ServerSeries(ServerId(3))).size(),
      1u);
  EXPECT_EQ(
      db.Series("campus/dc7/" + PowerMonitor::GroupSeries("evens")).size(), 1u);
  EXPECT_EQ(db.Series(std::string("campus/dc7/") + PowerMonitor::kTotalSeries)
                .size(),
            1u);
  // Nothing escapes the namespace — two prefixed monitors can share one db.
  for (const std::string& name : db.SeriesNames()) {
    EXPECT_EQ(name.rfind("campus/dc7/", 0), 0u) << name;
  }
  // In-memory accessors are prefix-agnostic; readings still match truth.
  EXPECT_NEAR(monitor.LatestRowWatts(RowId(0)), dc.row_power_watts(RowId(0)),
              1e-9);
}

// --- Degraded-path behavior with a fault injector attached ---

// Hand-written plans via the serialization format: exact windows on exact
// channels, no Poisson sampling in the way.
faults::FaultPlan PlanFromText(const std::string& text) {
  auto plan = faults::FaultPlan::Parse("faultplan v1\n" + text);
  AMPERE_CHECK(plan.has_value());
  return *plan;
}

// Many hash buckets so the two rows of SmallTopology land on distinct
// channels (verified by the tests that rely on it).
constexpr uint32_t kManyChannels = 257;

std::string ChannelLine(uint32_t channel, SimTime begin, SimTime end) {
  return "blackout_channels=" + std::to_string(kManyChannels) + "\nblackout " +
         std::to_string(begin.micros()) + ' ' + std::to_string(end.micros()) +
         ' ' + std::to_string(channel) + '\n';
}

TEST(PowerMonitorFaultTest, StalledPassLeavesEverythingAged) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  TimeSeriesDb db;
  PowerMonitor monitor(&dc, &db, NoiselessConfig(), Rng(1));
  // Pipeline stalled during [2 min, 3 min).
  faults::FaultInjector injector(PlanFromText(
      "stale " + std::to_string(SimTime::Minutes(2).micros()) + ' ' +
      std::to_string(SimTime::Minutes(3).micros()) + '\n'));
  monitor.AttachFaultInjector(&injector);

  monitor.SampleOnce(SimTime::Minutes(1));
  EXPECT_EQ(monitor.samples_taken(), 1u);
  monitor.SampleOnce(SimTime::Minutes(2));  // Stalled: nothing lands.
  EXPECT_EQ(monitor.samples_taken(), 1u);
  EXPECT_EQ(monitor.samples_stalled(), 1u);
  EXPECT_EQ(monitor.LatestSampleTime(), SimTime::Minutes(1));
  EXPECT_EQ(db.Series(PowerMonitor::kTotalSeries).size(), 1u);
  monitor.SampleOnce(SimTime::Minutes(3));  // Window is half-open: lands.
  EXPECT_EQ(monitor.samples_taken(), 2u);
  EXPECT_EQ(injector.counts().telemetry_stalls, 1u);
}

TEST(PowerMonitorFaultTest, RowBlackoutFreezesReadingAndStamp) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  TimeSeriesDb db;
  PowerMonitor monitor(&dc, &db, NoiselessConfig(), Rng(1));
  const uint32_t row0 = faults::FaultPlan::ChannelIndex(
      PowerMonitor::RowSeries(RowId(0)), kManyChannels);
  const uint32_t row1 = faults::FaultPlan::ChannelIndex(
      PowerMonitor::RowSeries(RowId(1)), kManyChannels);
  ASSERT_NE(row0, row1);
  // Row 0's feed dark during [2 min, 5 min).
  faults::FaultInjector injector(PlanFromText(
      ChannelLine(row0, SimTime::Minutes(2), SimTime::Minutes(5))));
  monitor.AttachFaultInjector(&injector);

  monitor.SampleOnce(SimTime::Minutes(1));
  const double row0_baseline = monitor.LatestRowWatts(RowId(0));
  const double server0_baseline = monitor.LatestServerWatts(ServerId(0));

  // Load lands on both rows; only row 1's feed sees it.
  dc.PlaceTask(ServerId(0), TaskSpec{JobId(1), Resources{8.0, 8.0},
                                     SimTime::Hours(2)});
  dc.PlaceTask(ServerId(4), TaskSpec{JobId(2), Resources{8.0, 8.0},
                                     SimTime::Hours(2)});
  monitor.SampleOnce(SimTime::Minutes(2));

  PowerReading dark = monitor.LatestRowReading(RowId(0), SimTime::Minutes(2));
  EXPECT_TRUE(dark.blacked_out);
  EXPECT_EQ(dark.stamp, SimTime::Minutes(1));  // Not refreshed.
  EXPECT_DOUBLE_EQ(dark.watts, row0_baseline);
  EXPECT_EQ(dark.Age(SimTime::Minutes(2)), SimTime::Minutes(1));
  // Per-server readings under the dark feed are not refreshed either.
  EXPECT_DOUBLE_EQ(monitor.LatestServerWatts(ServerId(0)), server0_baseline);

  PowerReading lit = monitor.LatestRowReading(RowId(1), SimTime::Minutes(2));
  EXPECT_FALSE(lit.blacked_out);
  EXPECT_EQ(lit.stamp, SimTime::Minutes(2));
  EXPECT_GT(lit.watts, row0_baseline);

  EXPECT_EQ(db.Series(PowerMonitor::RowSeries(RowId(0))).size(), 1u);
  EXPECT_EQ(db.Series(PowerMonitor::RowSeries(RowId(1))).size(), 2u);

  // Window over: the feed recovers and catches up.
  monitor.SampleOnce(SimTime::Minutes(5));
  PowerReading recovered =
      monitor.LatestRowReading(RowId(0), SimTime::Minutes(5));
  EXPECT_FALSE(recovered.blacked_out);
  EXPECT_EQ(recovered.stamp, SimTime::Minutes(5));
  EXPECT_GT(recovered.watts, row0_baseline);
}

TEST(PowerMonitorFaultTest, GroupReadingSurfacesMemberRowBlackout) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  TimeSeriesDb db;
  PowerMonitor monitor(&dc, &db, NoiselessConfig(), Rng(1));
  const uint32_t row0 = faults::FaultPlan::ChannelIndex(
      PowerMonitor::RowSeries(RowId(0)), kManyChannels);
  // A group name whose own channel is NOT the blacked-out one, so any
  // blackout flag must come from the member-row check.
  std::string group;
  for (int i = 0; i < 64 && group.empty(); ++i) {
    std::string name = "span" + std::to_string(i);
    if (faults::FaultPlan::ChannelIndex(PowerMonitor::GroupSeries(name),
                                        kManyChannels) != row0) {
      group = name;
    }
  }
  ASSERT_FALSE(group.empty());
  monitor.RegisterGroup(group, {ServerId(0), ServerId(4)});  // Spans rows 0+1.
  faults::FaultInjector injector(PlanFromText(
      ChannelLine(row0, SimTime::Minutes(2), SimTime::Minutes(5))));
  monitor.AttachFaultInjector(&injector);

  monitor.SampleOnce(SimTime::Minutes(1));
  EXPECT_FALSE(
      monitor.LatestGroupReading(group, SimTime::Minutes(1)).blacked_out);
  // Inside the member row's window the group sum would silently mix stale
  // per-server values — surfaced as blacked_out so consumers skip.
  monitor.SampleOnce(SimTime::Minutes(2));
  EXPECT_TRUE(
      monitor.LatestGroupReading(group, SimTime::Minutes(2)).blacked_out);
  monitor.SampleOnce(SimTime::Minutes(5));
  EXPECT_FALSE(
      monitor.LatestGroupReading(group, SimTime::Minutes(5)).blacked_out);
}

TEST(PowerMonitorFaultTest, DropoutKeepsLastKnownServerValue) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  TimeSeriesDb db;
  PowerMonitor monitor(&dc, &db, NoiselessConfig(), Rng(1));
  faults::FaultInjector injector(PlanFromText("sample_dropout_prob=1\n"));
  monitor.AttachFaultInjector(&injector);

  // Every reading drops: the pipeline keeps the initial (zero) values even
  // though the servers idle well above zero watts.
  monitor.SampleOnce(SimTime::Minutes(1));
  EXPECT_DOUBLE_EQ(monitor.LatestServerWatts(ServerId(0)), 0.0);
  EXPECT_DOUBLE_EQ(monitor.LatestRowWatts(RowId(0)), 0.0);
  EXPECT_EQ(injector.counts().dropped_samples,
            static_cast<uint64_t>(dc.num_servers()));
  // Row feeds themselves were up, so stamps did refresh (LVCF semantics).
  EXPECT_EQ(monitor.LatestRowReading(RowId(0), SimTime::Minutes(1)).stamp,
            SimTime::Minutes(1));

  // Detach: the next pass reads truth again.
  monitor.AttachFaultInjector(nullptr);
  monitor.SampleOnce(SimTime::Minutes(2));
  EXPECT_NEAR(monitor.LatestServerWatts(ServerId(0)),
              dc.server_power_watts(ServerId(0)), 1e-9);
}

TEST(PowerMonitorFaultTest, QuiescentInjectorIsBitIdenticalToNoInjector) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  TimeSeriesDb db_a, db_b;
  PowerMonitorConfig config;
  config.noise_sigma_watts = 3.0;  // Noise on: stream alignment matters.
  config.quantize_to_watts = false;
  PowerMonitor with(&dc, &db_a, config, Rng(9));
  PowerMonitor without(&dc, &db_b, config, Rng(9));
  faults::FaultPlanConfig zero;  // any() == false.
  faults::FaultPlan plan = faults::FaultPlan::Generate(zero, SimTime::Hours(1));
  faults::FaultInjector injector(plan);
  with.AttachFaultInjector(&injector);

  for (int m = 1; m <= 5; ++m) {
    with.SampleOnce(SimTime::Minutes(m));
    without.SampleOnce(SimTime::Minutes(m));
    for (int32_t s = 0; s < dc.num_servers(); ++s) {
      ASSERT_EQ(with.LatestServerWatts(ServerId(s)),
                without.LatestServerWatts(ServerId(s)));
    }
    ASSERT_EQ(with.LatestRowWatts(RowId(0)), without.LatestRowWatts(RowId(0)));
  }
  EXPECT_EQ(injector.counts(), faults::FaultCounts{});
}

TEST(PowerMonitorFaultTest, QuiescentPassTakesTheShardedPath) {
  // Regression for the faulted-pass fix: an attached-but-quiescent injector
  // must not force the serial pass. With a pool attached, the quiescent
  // monitor's readings stay bit-identical to an injector-free serial one —
  // which holds precisely because both run the same sharded clean pass.
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  TimeSeriesDb db_a, db_b;
  PowerMonitorConfig config;
  config.noise_sigma_watts = 3.0;
  config.quantize_to_watts = false;
  PowerMonitor with(&dc, &db_a, config, Rng(9));
  PowerMonitor without(&dc, &db_b, config, Rng(9));
  // Faults exist in the plan but only outside the sampled window.
  const uint32_t row0 = faults::FaultPlan::ChannelIndex(
      PowerMonitor::RowSeries(RowId(0)), kManyChannels);
  faults::FaultInjector injector(PlanFromText(
      ChannelLine(row0, SimTime::Hours(2), SimTime::Hours(3))));
  with.AttachFaultInjector(&injector);
  ThreadPool pool(3);
  with.SetThreadPool(&pool);

  for (int m = 1; m <= 5; ++m) {
    with.SampleOnce(SimTime::Minutes(m));
    without.SampleOnce(SimTime::Minutes(m));
    for (int32_t s = 0; s < dc.num_servers(); ++s) {
      ASSERT_EQ(with.LatestServerWatts(ServerId(s)),
                without.LatestServerWatts(ServerId(s)));
    }
  }
  EXPECT_EQ(injector.counts(), faults::FaultCounts{});

  // Once the blackout window opens, the same monitor degrades again: the
  // quiescence check is per-tick, not per-attach.
  with.SampleOnce(SimTime::Hours(2));
  EXPECT_TRUE(with.LatestRowReading(RowId(0), SimTime::Hours(2)).blacked_out);
}

TEST(PowerMonitorFaultTest, PowerReadingValidityAndAge) {
  PowerReading never;
  EXPECT_FALSE(never.valid());
  EXPECT_EQ(never.Age(SimTime::Hours(5)), SimTime::Max());
  PowerReading fresh;
  fresh.stamp = SimTime::Minutes(3);
  EXPECT_TRUE(fresh.valid());
  EXPECT_EQ(fresh.Age(SimTime::Minutes(5)), SimTime::Minutes(2));
}

}  // namespace
}  // namespace ampere
