#include "src/core/experiment.h"

#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/stats/correlation.h"

namespace ampere {
namespace {

// A small row keeps these integration tests fast while preserving the
// statistical structure (tens of servers, hundreds of jobs).
ExperimentConfig BaseConfig(double target_power, double ro) {
  ExperimentConfig config;
  config.seed = 2024;
  config.topology.num_rows = 1;
  config.topology.racks_per_row = 4;
  config.topology.servers_per_rack = 20;  // 80 servers.
  config.over_provision_ratio = ro;
  config.workload.arrivals.base_rate_per_min = ArrivalRateForNormalizedPower(
      config.topology, config.workload, target_power, ro);
  config.controller.effect = FreezeEffectModel(0.05);
  config.controller.et = EtEstimator::Constant(0.02);
  config.warmup = SimTime::Hours(1);
  config.duration = SimTime::Hours(3);
  return config;
}

TEST(ExperimentTest, ParitySplitIsBalanced) {
  ExperimentConfig config = BaseConfig(0.9, 0.25);
  ControlledExperiment experiment(config);
  EXPECT_EQ(experiment.experiment_servers().size(), 40u);
  EXPECT_EQ(experiment.control_servers().size(), 40u);
  for (ServerId id : experiment.experiment_servers()) {
    EXPECT_EQ(id.value() % 2, 0);
  }
  // Scaled budgets per Eq. (16).
  EXPECT_NEAR(experiment.experiment_budget_watts(), 40 * 250.0 / 1.25, 1e-9);
}

TEST(ExperimentTest, GroupsStatisticallyEquivalentWithoutControl) {
  // §4.1.2 validation: with Ampere off, the groups' power traces must agree
  // closely (paper: mean difference < 0.46 %, correlation 0.946). The
  // correlation comes from common-mode workload variation, so give the
  // arrival process a pronounced wandering component.
  // Strong diurnal swing provides the common-mode signal; 12 h of trace
  // spans a large part of the cycle.
  ExperimentConfig config = BaseConfig(0.92, 0.25);
  config.enable_ampere = false;
  config.workload.arrivals.diurnal_amplitude = 0.30;
  config.duration = SimTime::Hours(12);
  ControlledExperiment experiment(config);
  ExperimentResult result = experiment.Run();

  ASSERT_GT(result.experiment.minutes.size(), 100u);
  double mean_diff = std::abs(result.experiment.p_mean -
                              result.control.p_mean) /
                     result.control.p_mean;
  EXPECT_LT(mean_diff, 0.02);

  std::vector<double> exp_series;
  std::vector<double> ctl_series;
  for (const MinutePoint& m : result.experiment.minutes) {
    exp_series.push_back(m.normalized_power);
  }
  for (const MinutePoint& m : result.control.minutes) {
    ctl_series.push_back(m.normalized_power);
  }
  EXPECT_GT(PearsonCorrelation(exp_series, ctl_series), 0.6);
  // Throughput also splits evenly.
  EXPECT_NEAR(result.throughput_ratio, 1.0, 0.05);
  // And no control actions were ever taken.
  EXPECT_DOUBLE_EQ(result.experiment.u_mean, 0.0);
}

TEST(ExperimentTest, AmpereReducesViolationsUnderHeavyLoad) {
  // Demand above the scaled budget: the uncontrolled group violates
  // routinely, the controlled group rarely (Table 2's headline result).
  ExperimentConfig config = BaseConfig(1.03, 0.25);
  config.controller.effect = FreezeEffectModel(0.03);
  ControlledExperiment experiment(config);
  ExperimentResult result = experiment.Run();

  EXPECT_GT(result.control.violations, 40);
  EXPECT_LT(result.experiment.violations, result.control.violations / 3);
  EXPECT_GT(result.experiment.u_mean, 0.0);
  EXPECT_LT(result.experiment.p_max, result.control.p_max);
}

TEST(ExperimentTest, LightLoadNeedsAlmostNoControl) {
  ExperimentConfig config = BaseConfig(0.85, 0.25);
  ControlledExperiment experiment(config);
  ExperimentResult result = experiment.Run();
  EXPECT_LT(result.experiment.u_mean, 0.05);
  EXPECT_EQ(result.experiment.violations, 0);
  EXPECT_NEAR(result.throughput_ratio, 1.0, 0.06);
}

TEST(ExperimentTest, ControlCostsThroughputUnderHeavyLoad) {
  ExperimentConfig config = BaseConfig(1.02, 0.25);
  ControlledExperiment experiment(config);
  ExperimentResult result = experiment.Run();
  // Freezing diverts jobs to the control group: rT < 1.
  EXPECT_LT(result.throughput_ratio, 0.98);
  EXPECT_GT(result.throughput_ratio, 0.5);
  EXPECT_NEAR(result.gain_tpw,
              result.throughput_ratio * 1.25 - 1.0, 1e-12);
}

TEST(ExperimentTest, FuCalibrationFindsPositiveSlope) {
  ExperimentConfig config = BaseConfig(0.95, 0.25);
  config.enable_ampere = false;
  config.warmup = SimTime::Hours(1);
  ControlledExperiment experiment(config);
  std::vector<double> levels{0.2, 0.4, 0.6};
  auto samples = experiment.RunFuCalibration(levels, SimTime::Minutes(5),
                                             SimTime::Minutes(20),
                                             SimTime::Hours(10));
  ASSERT_GT(samples.size(), 100u);
  FreezeEffectModel model = FreezeEffectModel::Fit(samples);
  EXPECT_GT(model.kr(), 0.0);
  EXPECT_LT(model.kr(), 1.0);
}

TEST(ExperimentTest, FrozenServersNeverReceivePlacements) {
  ExperimentConfig config = BaseConfig(1.02, 0.25);
  ControlledExperiment experiment(config);
  bool violation_seen = false;
  experiment.scheduler().SetPlacementListener(
      [&](const JobSpec&, ServerId server) {
        if (experiment.dc().server(server).frozen()) {
          violation_seen = true;
        }
      });
  experiment.Run();
  EXPECT_FALSE(violation_seen);
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
  ExperimentConfig config = BaseConfig(0.97, 0.25);
  config.duration = SimTime::Hours(1);
  ExperimentResult a = ControlledExperiment(config).Run();
  ExperimentResult b = ControlledExperiment(config).Run();
  EXPECT_EQ(a.experiment.throughput_jobs, b.experiment.throughput_jobs);
  EXPECT_DOUBLE_EQ(a.experiment.p_mean, b.experiment.p_mean);
  EXPECT_DOUBLE_EQ(a.experiment.u_mean, b.experiment.u_mean);
  EXPECT_EQ(a.control.violations, b.control.violations);
}

TEST(ExperimentTest, UnscaledControlBudgetChangesViolationBaseline) {
  // §4.4 methodology: when only the experiment group's budget is scaled,
  // the control group (rated provisioning) can essentially never violate,
  // even while the experiment group is under pressure.
  ExperimentConfig config = BaseConfig(1.0, 0.25);
  config.scale_control_budget = false;
  config.duration = SimTime::Hours(2);
  ControlledExperiment experiment(config);
  EXPECT_NEAR(experiment.control_budget_watts(), 40 * 250.0, 1e-9);
  ExperimentResult result = experiment.Run();
  EXPECT_EQ(result.control.violations, 0);
  EXPECT_LT(result.control.p_mean, 0.9);     // Rated-normalized.
  EXPECT_GT(result.experiment.p_mean, 0.9);  // Scaled-normalized.
}

TEST(ArrivalRateCalibrationTest, ProducesTargetPower) {
  // The steady-state power of an uncontrolled run should land near the
  // calibration target.
  ExperimentConfig config = BaseConfig(0.9, 0.25);
  config.enable_ampere = false;
  config.duration = SimTime::Hours(2);
  ExperimentResult result = ControlledExperiment(config).Run();
  EXPECT_NEAR(result.control.p_mean, 0.9, 0.05);
}

TEST(ArrivalRateCalibrationTest, RejectsUnreachableTargets) {
  TopologyConfig topo;
  BatchWorkloadParams workload;
  // Below the idle floor.
  EXPECT_THROW(
      ArrivalRateForNormalizedPower(topo, workload, 0.3, 0.25),
      CheckFailure);
  // Above full utilization.
  EXPECT_THROW(
      ArrivalRateForNormalizedPower(topo, workload, 1.6, 0.25),
      CheckFailure);
}

}  // namespace
}  // namespace ampere
