#include "src/control/et_estimator.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace ampere {
namespace {

TEST(EtEstimatorTest, ConstantProfile) {
  EtEstimator et = EtEstimator::Constant(0.03);
  for (int h = 0; h < 30; ++h) {
    EXPECT_DOUBLE_EQ(et.Estimate(SimTime::Hours(h)), 0.03);
  }
}

TEST(EtEstimatorTest, ConstantRejectsInvalid) {
  EXPECT_THROW(EtEstimator::Constant(-0.01), CheckFailure);
  EXPECT_THROW(EtEstimator::Constant(1.0), CheckFailure);
}

TEST(EtEstimatorTest, FromHistoryPicksHourlyQuantile) {
  // Build 2 days of per-minute history where hour 5 has big jumps.
  std::vector<double> history;
  double v = 0.5;
  Rng rng(1);
  for (int m = 0; m < 2 * 24 * 60; ++m) {
    int hour = (m / 60) % 24;
    double step = hour == 5 ? rng.Uniform(0.0, 0.05) : rng.Uniform(0.0, 0.005);
    v += step;
    if (v > 1.0) {
      v = 0.5;  // Reset so the series stays bounded.
    }
    history.push_back(v);
  }
  EtEstimator et = EtEstimator::FromHistory(history, 0, 0.9, 0.03);
  double hour5 = et.Estimate(SimTime::Hours(5.5));
  double hour10 = et.Estimate(SimTime::Hours(10.5));
  EXPECT_GT(hour5, hour10);
  EXPECT_GT(hour5, 0.02);
  EXPECT_LT(hour10, 0.01);
}

TEST(EtEstimatorTest, FallbackForMissingHours) {
  // One hour of data only.
  std::vector<double> history(60, 0.5);
  EtEstimator et = EtEstimator::FromHistory(history, 0, 0.995, 0.042);
  EXPECT_DOUBLE_EQ(et.Estimate(SimTime::Hours(12)), 0.042);
  EXPECT_DOUBLE_EQ(et.Estimate(SimTime::Hours(0.5)), 0.0);  // Flat history.
}

TEST(EtEstimatorTest, NegativeQuantilesClampToZero) {
  // Monotonically falling power: all increases negative.
  std::vector<double> history;
  for (int m = 0; m < 24 * 60; ++m) {
    history.push_back(1.0 - 0.0001 * m);
  }
  EtEstimator et = EtEstimator::FromHistory(history, 0, 0.995, 0.03);
  for (int h = 0; h < 24; ++h) {
    EXPECT_GE(et.Estimate(SimTime::Hours(h)), 0.0);
  }
}

TEST(EtEstimatorTest, EstimateUsesHourOfDayModulo) {
  std::vector<double> history;
  double v = 0.0;
  for (int m = 0; m < 24 * 60; ++m) {
    v += ((m / 60) % 24 == 3) ? 0.01 : 0.0;
    history.push_back(v);
  }
  EtEstimator et = EtEstimator::FromHistory(history, 0, 0.9, 0.0);
  // Day 2, hour 3 maps onto the same profile entry.
  EXPECT_GT(et.Estimate(SimTime::Hours(27.5)), 0.005);
}

}  // namespace
}  // namespace ampere
