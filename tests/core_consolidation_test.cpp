#include "src/core/consolidation.h"

#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/workload/batch_workload.h"

namespace ampere {
namespace {

struct Fixture {
  Simulation sim;
  DataCenter dc;
  Scheduler scheduler;

  static TopologyConfig Topology() {
    TopologyConfig config;
    config.num_rows = 1;
    config.racks_per_row = 2;
    config.servers_per_rack = 8;  // 16 servers.
    config.wake_latency = SimTime::Seconds(10);
    return config;
  }

  Fixture() : dc(Topology(), &sim), scheduler(&dc, SchedulerConfig{}, Rng(7)) {}

  ConsolidationConfig Config() const {
    ConsolidationConfig config;
    config.sleep_below_utilization = 0.40;
    config.wake_above_utilization = 0.60;
    config.min_awake = 4;
    config.step = 2;
    return config;
  }

  void LoadServers(int count, double cores) {
    for (int32_t s = 0; s < count; ++s) {
      dc.PlaceTask(ServerId(s), TaskSpec{JobId(100 + s),
                                         Resources{cores, cores},
                                         SimTime::Hours(100)});
    }
  }
};

TEST(ConsolidationTest, SleepsIdleServersWhenUtilizationLow) {
  Fixture f;
  f.LoadServers(4, 8.0);  // Utilization 2/16 = 0.125.
  ConsolidationController controller(&f.dc, &f.scheduler, f.Config());
  controller.Tick();
  EXPECT_EQ(controller.ServersAsleep(), 2u);  // One step.
  controller.Tick();
  EXPECT_EQ(controller.ServersAsleep(), 4u);
  EXPECT_EQ(controller.sleeps_initiated(), 4u);
}

TEST(ConsolidationTest, NeverSleepsBelowMinAwake) {
  Fixture f;  // Fully idle.
  ConsolidationController controller(&f.dc, &f.scheduler, f.Config());
  for (int i = 0; i < 20; ++i) {
    controller.Tick();
  }
  EXPECT_EQ(controller.ServersAsleep(), 12u);  // 16 - min_awake(4).
}

TEST(ConsolidationTest, NeverSleepsBusyOrReservedServers) {
  Fixture f;
  f.LoadServers(2, 4.0);
  f.dc.SetReserved(ServerId(5), true);
  ConsolidationController controller(&f.dc, &f.scheduler, f.Config());
  for (int i = 0; i < 20; ++i) {
    controller.Tick();
  }
  EXPECT_FALSE(f.dc.server(ServerId(0)).asleep());
  EXPECT_FALSE(f.dc.server(ServerId(1)).asleep());
  EXPECT_FALSE(f.dc.server(ServerId(5)).asleep());
}

TEST(ConsolidationTest, WakesOnHighUtilization) {
  Fixture f;
  ConsolidationController controller(&f.dc, &f.scheduler, f.Config());
  for (int i = 0; i < 20; ++i) {
    controller.Tick();
  }
  ASSERT_EQ(controller.ServersAsleep(), 12u);
  // Load the 4 awake servers hard: utilization on awake fleet > 0.6.
  for (int32_t s = 0; s < 16; ++s) {
    if (!f.dc.server(ServerId(s)).asleep()) {
      f.dc.PlaceTask(ServerId(s), TaskSpec{JobId(200 + s),
                                           Resources{12.0, 12.0},
                                           SimTime::Hours(100)});
    }
  }
  controller.Tick();
  EXPECT_EQ(controller.wakes_initiated(), 2u);
  f.sim.RunUntil(f.sim.now() + SimTime::Seconds(11));
  EXPECT_EQ(controller.ServersAsleep(), 10u);
}

TEST(ConsolidationTest, WakesOnQueueBackPressure) {
  Fixture f;
  ConsolidationController controller(&f.dc, &f.scheduler, f.Config());
  for (int i = 0; i < 20; ++i) {
    controller.Tick();
  }
  // A job too big for the awake capacity queues.
  for (int32_t s = 0; s < 16; ++s) {
    if (!f.dc.server(ServerId(s)).asleep()) {
      f.dc.PlaceTask(ServerId(s), TaskSpec{JobId(300 + s),
                                           Resources{10.0, 10.0},
                                           SimTime::Hours(100)});
    }
  }
  JobSpec job;
  job.id = JobId(999);
  job.demand = Resources{8.0, 8.0};
  job.duration = SimTime::Minutes(5);
  f.scheduler.Submit(job);
  ASSERT_EQ(f.scheduler.queue_length(), 1u);
  controller.Tick();
  EXPECT_GT(controller.wakes_initiated(), 0u);
}

TEST(ConsolidationTest, HysteresisBandRequired) {
  Fixture f;
  ConsolidationConfig config = f.Config();
  config.sleep_below_utilization = 0.6;
  config.wake_above_utilization = 0.5;
  EXPECT_THROW(ConsolidationController(&f.dc, &f.scheduler, config),
               CheckFailure);
}

}  // namespace
}  // namespace ampere
