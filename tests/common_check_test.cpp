#include "src/common/check.h"

#include <gtest/gtest.h>

#include "src/common/log.h"

namespace ampere {
namespace {

TEST(CheckTest, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(AMPERE_CHECK(1 + 1 == 2));
}

TEST(CheckTest, FailingConditionThrowsCheckFailure) {
  EXPECT_THROW(AMPERE_CHECK(false), CheckFailure);
}

TEST(CheckTest, MessageIncludesConditionAndStreamedText) {
  try {
    AMPERE_CHECK(2 > 3) << "math broke, x=" << 42;
    FAIL() << "expected throw";
  } catch (const CheckFailure& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("math broke, x=42"), std::string::npos);
  }
}

TEST(CheckTest, CheckIsUsableInIfElseWithoutBraces) {
  // The macro must parse as a single statement.
  if (true)
    AMPERE_CHECK(true);
  else
    AMPERE_CHECK(false);
}

TEST(LogTest, LevelGatingSuppressesBelowThreshold) {
  LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // Smoke: these must not crash and must not evaluate expensive streams when
  // suppressed. We verify the level accessor round-trips.
  AMPERE_LOG(kDebug) << "suppressed";
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(old_level);
}

}  // namespace
}  // namespace ampere
