#include "src/telemetry/timeseries_db.h"

#include <gtest/gtest.h>

#include "src/common/check.h"

namespace ampere {
namespace {

TEST(TimeSeriesDbTest, AppendAndReadBack) {
  TimeSeriesDb db;
  db.Append("row/0/power", SimTime::Minutes(1), 100.0);
  db.Append("row/0/power", SimTime::Minutes(2), 110.0);
  auto series = db.Series("row/0/power");
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].time, SimTime::Minutes(1));
  EXPECT_DOUBLE_EQ(series[1].value, 110.0);
}

TEST(TimeSeriesDbTest, MissingSeriesIsEmpty) {
  TimeSeriesDb db;
  EXPECT_TRUE(db.Series("nope").empty());
  EXPECT_TRUE(db.Values("nope").empty());
  EXPECT_FALSE(db.Latest("nope").has_value());
}

TEST(TimeSeriesDbTest, OutOfOrderAppendThrows) {
  TimeSeriesDb db;
  db.Append("s", SimTime::Minutes(5), 1.0);
  EXPECT_THROW(db.Append("s", SimTime::Minutes(4), 2.0), CheckFailure);
  // Equal timestamps are allowed (same-minute resample).
  EXPECT_NO_THROW(db.Append("s", SimTime::Minutes(5), 3.0));
}

TEST(TimeSeriesDbTest, LatestReturnsNewest) {
  TimeSeriesDb db;
  db.Append("s", SimTime::Minutes(1), 1.0);
  db.Append("s", SimTime::Minutes(2), 2.0);
  auto latest = db.Latest("s");
  ASSERT_TRUE(latest.has_value());
  EXPECT_DOUBLE_EQ(latest->value, 2.0);
}

TEST(TimeSeriesDbTest, QueryRangeInclusive) {
  TimeSeriesDb db;
  for (int m = 0; m < 10; ++m) {
    db.Append("s", SimTime::Minutes(m), static_cast<double>(m));
  }
  auto range = db.Query("s", SimTime::Minutes(3), SimTime::Minutes(6));
  ASSERT_EQ(range.size(), 4u);
  EXPECT_DOUBLE_EQ(range.front().value, 3.0);
  EXPECT_DOUBLE_EQ(range.back().value, 6.0);
}

TEST(TimeSeriesDbTest, QueryOutsideRangeEmpty) {
  TimeSeriesDb db;
  db.Append("s", SimTime::Minutes(5), 1.0);
  EXPECT_TRUE(db.Query("s", SimTime::Minutes(6), SimTime::Minutes(9)).empty());
  EXPECT_TRUE(db.Query("s", SimTime::Minutes(0), SimTime::Minutes(4)).empty());
}

TEST(TimeSeriesDbTest, ValuesExtractsInOrder) {
  TimeSeriesDb db;
  db.Append("s", SimTime::Minutes(1), 5.0);
  db.Append("s", SimTime::Minutes(2), 7.0);
  EXPECT_EQ(db.Values("s"), (std::vector<double>{5.0, 7.0}));
}

TEST(TimeSeriesDbTest, SeriesNamesSortedAndCounted) {
  TimeSeriesDb db;
  db.Append("b", SimTime(), 1.0);
  db.Append("a", SimTime(), 1.0);
  db.Append("a", SimTime::Minutes(1), 2.0);
  auto names = db.SeriesNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
  EXPECT_EQ(db.TotalPoints(), 3u);
}

}  // namespace
}  // namespace ampere
