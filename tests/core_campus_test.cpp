// Closed-loop invariants for the campus federation layer.
//
// These tests run small 2-DC campuses end to end and pin the federation
// contract: the allocator conserves the campus cap across re-plans, the
// headroom policy moves budget toward the hot DC, spillover bookkeeping
// balances across the campus, and the guard rails (campus disabled, faults
// enabled) fail loudly instead of silently running the wrong topology.

#include "src/core/campus_experiment.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/core/controller.h"
#include "src/core/experiment.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20260808;

// 2 DCs x 24 servers, one hot DC and one cold DC, 1 h measured window with
// four 15-minute re-plans.
ExperimentConfig SmallCampusConfig() {
  ExperimentConfig config;
  config.seed = kSeed;
  config.topology.num_rows = 1;
  config.topology.racks_per_row = 3;
  config.topology.servers_per_rack = 8;  // 24 servers per DC.
  config.controller.effect = FreezeEffectModel(0.05);
  config.controller.et = EtEstimator::Constant(0.02);
  config.warmup = SimTime::Minutes(30);
  config.duration = SimTime::Hours(1);
  config.campus.enabled = true;
  config.campus.num_datacenters = 2;
  // Note the idle floor: at idle_fraction 0.65 and rO 0.25 a DC cannot sit
  // below ~0.81 normalized power, so "cold" means 0.85 here.
  config.campus.dc_target_power = {0.99, 0.85};
  return config;
}

TEST(CampusExperimentTest, SmokeShapesAndSchedule) {
  CampusResult result = RunCampusToResult(SmallCampusConfig());
  ASSERT_EQ(result.dcs.size(), 2u);
  // Re-plans fire at warmup+5s and then every 15 min inside the 1 h window:
  // 30:05, 45:05, 60:05, 75:05.
  EXPECT_EQ(result.replans, 4u);
  EXPECT_FALSE(result.breaker_tripped);
  EXPECT_GT(result.jobs_submitted, 0u);
  EXPECT_GT(result.jobs_completed, 0u);
  EXPECT_GT(result.throughput_ratio, 0.0);
  // One audit record per DC per re-plan, under the campus/dcK domains.
  EXPECT_EQ(result.allocator_journal.total_appended, 2u * result.replans);
  ASSERT_EQ(result.allocator_journal.domains.size(), 2u);
  EXPECT_NE(result.allocator_journal.FindDomain("campus/dc0"), nullptr);
  EXPECT_NE(result.allocator_journal.FindDomain("campus/dc1"), nullptr);
  for (const CampusDcResult& dc : result.dcs) {
    // 60 measured minutes per group per DC.
    EXPECT_EQ(dc.experiment.minutes.size(), 60u);
    EXPECT_EQ(dc.control.minutes.size(), 60u);
    EXPECT_FALSE(dc.breaker_tripped);
    EXPECT_GT(dc.final_budget_watts, 0.0);
    EXPECT_GT(dc.journal.total_appended, 0u);
  }
}

TEST(CampusExperimentTest, ReplansConserveTheCampusCap) {
  CampusExperiment experiment(SmallCampusConfig());
  const double campus_cap = experiment.allocator().campus_total_watts();
  // The cap is the sum of the rO-scaled per-DC experiment budgets: 12
  // even-parity servers x 250 W rated / 1.25, per DC.
  EXPECT_NEAR(campus_cap, 2 * 12 * 250.0 / 1.25, 1e-9);
  CampusResult result = experiment.Run();
  double final_sum = 0.0;
  for (const CampusDcResult& dc : result.dcs) {
    final_sum += dc.final_budget_watts;
    // No DC's share may exceed its rated experiment-group provisioning.
    EXPECT_LE(dc.final_budget_watts, 12 * 250.0 + 1e-9);
  }
  EXPECT_NEAR(final_sum, campus_cap, 1e-6);
}

TEST(CampusExperimentTest, HeadroomPolicyShiftsBudgetTowardTheHotDc) {
  ExperimentConfig config = SmallCampusConfig();
  config.campus.allocator.policy = CampusAllocPolicy::kHeadroom;
  CampusExperiment experiment(config);
  const double equal_split = experiment.allocator().campus_total_watts() / 2.0;
  CampusResult result = experiment.Run();
  // DC 0 runs at 0.99 normalized power, DC 1 at 0.85: after the re-plans the
  // hot DC must hold more than the static split, funded by the cold one.
  EXPECT_GT(result.dcs[0].final_budget_watts, equal_split);
  EXPECT_LT(result.dcs[1].final_budget_watts, equal_split);
}

TEST(CampusExperimentTest, StaticPolicyKeepsTheEqualSplit) {
  ExperimentConfig config = SmallCampusConfig();
  config.campus.allocator.policy = CampusAllocPolicy::kStatic;
  CampusExperiment experiment(config);
  const double equal_split = experiment.allocator().campus_total_watts() / 2.0;
  CampusResult result = experiment.Run();
  EXPECT_NEAR(result.dcs[0].final_budget_watts, equal_split, 1e-6);
  EXPECT_NEAR(result.dcs[1].final_budget_watts, equal_split, 1e-6);
}

TEST(CampusExperimentTest, SpilloverAccountingBalancesAcrossTheCampus) {
  ExperimentConfig config = SmallCampusConfig();
  // Overdrive DC 0 so its queue backs up while DC 1 idles, and make any
  // queued job eligible to move. The static policy keeps DC 0's budget at
  // the equal split, so its controller stays in violation and keeps
  // freezing (headroom would bail it out instead).
  config.campus.allocator.policy = CampusAllocPolicy::kStatic;
  config.campus.dc_target_power = {1.24, 0.85};
  config.campus.enable_spillover = true;
  config.campus.spillover_queue_threshold = 0;
  config.campus.spillover_max_jobs_per_pass = 16;
  CampusResult result = RunCampusToResult(config);
  uint64_t total_out = 0;
  uint64_t total_in = 0;
  for (const CampusDcResult& dc : result.dcs) {
    total_out += dc.jobs_spilled_out;
    total_in += dc.jobs_spilled_in;
  }
  EXPECT_EQ(total_out, result.spillover_jobs);
  EXPECT_EQ(total_in, result.spillover_jobs);
  // The overdriven DC actually starves: spillover must have engaged.
  EXPECT_GT(result.spillover_jobs, 0u);
  EXPECT_GT(result.dcs[0].jobs_spilled_out, 0u);
  EXPECT_EQ(result.dcs[0].jobs_spilled_in, 0u);
}

TEST(CampusExperimentTest, SpilloverOffMovesNothing) {
  CampusResult result = RunCampusToResult(SmallCampusConfig());
  EXPECT_EQ(result.spillover_jobs, 0u);
  for (const CampusDcResult& dc : result.dcs) {
    EXPECT_EQ(dc.jobs_spilled_out, 0u);
    EXPECT_EQ(dc.jobs_spilled_in, 0u);
  }
}

TEST(CampusExperimentTest, SeriesLandUnderPerDcPrefixes) {
  CampusExperiment experiment(SmallCampusConfig());
  experiment.Run();
  EXPECT_EQ(CampusExperiment::DcPrefix(DataCenterId(3)), "campus/dc3/");
  const std::vector<std::string> names = experiment.db().SeriesNames();
  auto any_with_prefix = [&names](const std::string& prefix) {
    return std::any_of(names.begin(), names.end(),
                       [&prefix](const std::string& name) {
                         return name.rfind(prefix, 0) == 0;
                       });
  };
  EXPECT_TRUE(any_with_prefix("campus/dc0/"));
  EXPECT_TRUE(any_with_prefix("campus/dc1/"));
  // Every series is namespaced: nothing leaks into the single-DC names.
  for (const std::string& name : names) {
    EXPECT_EQ(name.rfind("campus/dc", 0), 0u) << name;
  }
}

TEST(CampusExperimentTest, GuardRailsRejectBadConfigs) {
  ExperimentConfig disabled = SmallCampusConfig();
  disabled.campus.enabled = false;
  EXPECT_THROW(RunCampusToResult(disabled), CheckFailure);

  ExperimentConfig no_controller = SmallCampusConfig();
  no_controller.enable_ampere = false;
  EXPECT_THROW(RunCampusToResult(no_controller), CheckFailure);

  ExperimentConfig faulted = SmallCampusConfig();
  faulted.faults.sample_dropout_prob = 0.01;
  EXPECT_THROW(RunCampusToResult(faulted), CheckFailure);
}

}  // namespace
}  // namespace ampere
