#include "src/sim/simulation.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "src/common/check.h"

namespace ampere {
namespace {

TEST(SimulationTest, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(SimTime::Seconds(3), [&] { order.push_back(3); });
  sim.ScheduleAt(SimTime::Seconds(1), [&] { order.push_back(1); });
  sim.ScheduleAt(SimTime::Seconds(2), [&] { order.push_back(2); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::Seconds(3));
}

TEST(SimulationTest, SameTimeEventsFireFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAt(SimTime::Seconds(1), [&order, i] { order.push_back(i); });
  }
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, ClockAdvancesToEventTime) {
  Simulation sim;
  SimTime seen;
  sim.ScheduleAt(SimTime::Minutes(5), [&] { seen = sim.now(); });
  sim.RunToCompletion();
  EXPECT_EQ(seen, SimTime::Minutes(5));
}

TEST(SimulationTest, SchedulingIntoThePastThrows) {
  Simulation sim;
  sim.ScheduleAt(SimTime::Seconds(10), [] {});
  sim.RunToCompletion();
  EXPECT_THROW(sim.ScheduleAt(SimTime::Seconds(5), [] {}), CheckFailure);
}

TEST(SimulationTest, ScheduleAfterIsRelative) {
  Simulation sim;
  std::vector<double> fire_times;
  sim.ScheduleAt(SimTime::Seconds(10), [&] {
    sim.ScheduleAfter(SimTime::Seconds(5),
                      [&] { fire_times.push_back(sim.now().seconds()); });
  });
  sim.RunToCompletion();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_DOUBLE_EQ(fire_times[0], 15.0);
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  auto handle = sim.ScheduleAt(SimTime::Seconds(1), [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.Cancel();
  EXPECT_FALSE(handle.pending());
  sim.RunToCompletion();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, CancelAfterFireIsNoop) {
  Simulation sim;
  auto handle = sim.ScheduleAt(SimTime::Seconds(1), [] {});
  sim.RunToCompletion();
  EXPECT_FALSE(handle.pending());
  handle.Cancel();  // Must not crash.
}

TEST(SimulationTest, DefaultHandleIsInert) {
  Simulation::EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.Cancel();
}

TEST(SimulationTest, RunUntilStopsAtBoundaryAndSetsClock) {
  Simulation sim;
  std::vector<double> fired;
  sim.ScheduleAt(SimTime::Seconds(1), [&] { fired.push_back(1.0); });
  sim.ScheduleAt(SimTime::Seconds(5), [&] { fired.push_back(5.0); });
  sim.RunUntil(SimTime::Seconds(3));
  EXPECT_EQ(fired, std::vector<double>{1.0});
  EXPECT_EQ(sim.now(), SimTime::Seconds(3));
  sim.RunUntil(SimTime::Seconds(10));
  EXPECT_EQ(fired, (std::vector<double>{1.0, 5.0}));
}

TEST(SimulationTest, EventAtBoundaryIncludedInRunUntil) {
  Simulation sim;
  bool fired = false;
  sim.ScheduleAt(SimTime::Seconds(3), [&] { fired = true; });
  sim.RunUntil(SimTime::Seconds(3));
  EXPECT_TRUE(fired);
}

TEST(SimulationTest, RunUntilHonorsBoundaryPastCancelledEvents) {
  // Regression: a cancelled entry at the queue head must not let RunUntil
  // execute a live event beyond the boundary.
  Simulation sim;
  bool late_fired = false;
  auto early = sim.ScheduleAt(SimTime::Seconds(1), [] {});
  sim.ScheduleAt(SimTime::Seconds(100), [&] { late_fired = true; });
  early.Cancel();
  sim.RunUntil(SimTime::Seconds(10));
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(sim.now(), SimTime::Seconds(10));
  sim.RunUntil(SimTime::Seconds(200));
  EXPECT_TRUE(late_fired);
}

TEST(SimulationTest, PeriodicTaskFiresAtInterval) {
  Simulation sim;
  std::vector<double> fire_minutes;
  sim.SchedulePeriodic(SimTime::Minutes(1), SimTime::Minutes(1),
                       [&](SimTime t) { fire_minutes.push_back(t.minutes()); });
  sim.RunUntil(SimTime::Minutes(5.5));
  EXPECT_EQ(fire_minutes, (std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0}));
}

TEST(SimulationTest, PeriodicTasksInterleaveDeterministically) {
  Simulation sim;
  std::vector<char> order;
  sim.SchedulePeriodic(SimTime::Minutes(1), SimTime::Minutes(1),
                       [&](SimTime) { order.push_back('a'); });
  sim.SchedulePeriodic(SimTime::Minutes(1), SimTime::Minutes(1),
                       [&](SimTime) { order.push_back('b'); });
  sim.RunUntil(SimTime::Minutes(3));
  // 'a' was registered first and must stay first at every shared instant.
  EXPECT_EQ(order, (std::vector<char>{'a', 'b', 'a', 'b', 'a', 'b'}));
}

TEST(SimulationTest, ProcessedEventCountTracks) {
  Simulation sim;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(SimTime::Seconds(i), [] {});
  }
  sim.RunToCompletion();
  EXPECT_EQ(sim.processed_events(), 10u);
}

TEST(SimulationTest, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.Step());
}

// --- Pooled event core ----------------------------------------------------
//
// The slab/free-list slot pool and generation-checked handles are invisible
// to well-behaved callers; these tests pin down the recycling behavior
// directly through the slab_size()/free_slots() introspection hooks.

TEST(SimulationPoolTest, SequentialScheduleFireCyclesReuseOneSlot) {
  Simulation sim;
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    sim.ScheduleAt(SimTime::Seconds(i), [&] { ++fired; });
    sim.Step();
  }
  EXPECT_EQ(fired, 100);
  // Fire returns the slot to the free list; the next schedule reuses it.
  EXPECT_EQ(sim.slab_size(), 1u);
  EXPECT_EQ(sim.free_slots(), 1u);
}

TEST(SimulationPoolTest, StaleHandleCannotCancelRecycledSlot) {
  Simulation sim;
  bool second_fired = false;
  auto first = sim.ScheduleAt(SimTime::Seconds(1), [] {});
  sim.Step();  // Fires; the slot goes back to the free list.
  // Reuses the same slot under a newer generation.
  auto second =
      sim.ScheduleAt(SimTime::Seconds(2), [&] { second_fired = true; });
  EXPECT_EQ(sim.slab_size(), 1u);
  EXPECT_FALSE(first.pending());
  first.Cancel();  // Stale generation: must not touch the new occupant.
  EXPECT_TRUE(second.pending());
  sim.RunToCompletion();
  EXPECT_TRUE(second_fired);
}

TEST(SimulationPoolTest, CancelRecyclesTheSlotImmediately) {
  Simulation sim;
  auto handle = sim.ScheduleAt(SimTime::Seconds(1), [] {});
  EXPECT_EQ(sim.free_slots(), 0u);
  handle.Cancel();
  EXPECT_EQ(sim.free_slots(), 1u);
  EXPECT_EQ(sim.pending_events(), 0u);
  // The orphaned queue entry is discarded by its generation mismatch.
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(sim.processed_events(), 0u);
}

TEST(SimulationPoolTest, GenerationChecksSurviveManyReuseCycles) {
  Simulation sim;
  int fired = 0;
  std::vector<Simulation::EventHandle> stale;
  for (int i = 0; i < 1000; ++i) {
    stale.push_back(sim.ScheduleAt(SimTime::Seconds(i), [&] { ++fired; }));
    sim.Step();
  }
  EXPECT_EQ(fired, 1000);
  EXPECT_EQ(sim.slab_size(), 1u);
  // Every retained handle is stale; pending() is false and Cancel() is a
  // no-op for each of the 1000 generations the slot has been through.
  for (auto& handle : stale) {
    EXPECT_FALSE(handle.pending());
    handle.Cancel();
  }
  EXPECT_EQ(sim.free_slots(), 1u);
}

TEST(SimulationPoolTest, OversizedCallbackFallsBackToHeapAndFires) {
  Simulation sim;
  // 128 bytes of captured state: beyond the slot's inline buffer, so this
  // exercises the heap fallback path of the pooled callback storage.
  std::array<uint64_t, 16> payload{};
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = i * 3 + 1;
  }
  uint64_t sum = 0;
  sim.ScheduleAt(SimTime::Seconds(1), [payload, &sum] {
    for (uint64_t v : payload) {
      sum += v;
    }
  });
  sim.RunToCompletion();
  uint64_t expected = 0;
  for (size_t i = 0; i < payload.size(); ++i) {
    expected += i * 3 + 1;
  }
  EXPECT_EQ(sum, expected);
}

TEST(SimulationPoolTest, ReserveEventsPreCreatesSlots) {
  Simulation sim;
  sim.ReserveEvents(64);
  EXPECT_EQ(sim.slab_size(), 64u);
  EXPECT_EQ(sim.free_slots(), 64u);
  std::vector<Simulation::EventHandle> handles;
  for (int i = 0; i < 64; ++i) {
    handles.push_back(sim.ScheduleAt(SimTime::Seconds(1), [] {}));
  }
  // All 64 draws came from the reserve; the slab did not grow.
  EXPECT_EQ(sim.slab_size(), 64u);
  EXPECT_EQ(sim.free_slots(), 0u);
  sim.RunToCompletion();
  EXPECT_EQ(sim.free_slots(), 64u);
}

TEST(SimulationPoolTest, CancelInsideOwnCallbackIsNoop) {
  Simulation sim;
  Simulation::EventHandle handle;
  bool fired = false;
  handle = sim.ScheduleAt(SimTime::Seconds(1), [&] {
    fired = true;
    // The event counts as fired before its callback runs, matching the old
    // shared-state handle semantics.
    EXPECT_FALSE(handle.pending());
    handle.Cancel();
  });
  sim.RunToCompletion();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.free_slots(), sim.slab_size());
}

TEST(SimulationTest, EventsScheduledDuringRunExecute) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      sim.ScheduleAfter(SimTime::Seconds(1), recurse);
    }
  };
  sim.ScheduleAt(SimTime::Seconds(0), recurse);
  sim.RunToCompletion();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), SimTime::Seconds(4));
}

}  // namespace
}  // namespace ampere
