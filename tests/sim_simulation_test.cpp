#include "src/sim/simulation.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/check.h"

namespace ampere {
namespace {

TEST(SimulationTest, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(SimTime::Seconds(3), [&] { order.push_back(3); });
  sim.ScheduleAt(SimTime::Seconds(1), [&] { order.push_back(1); });
  sim.ScheduleAt(SimTime::Seconds(2), [&] { order.push_back(2); });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::Seconds(3));
}

TEST(SimulationTest, SameTimeEventsFireFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAt(SimTime::Seconds(1), [&order, i] { order.push_back(i); });
  }
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, ClockAdvancesToEventTime) {
  Simulation sim;
  SimTime seen;
  sim.ScheduleAt(SimTime::Minutes(5), [&] { seen = sim.now(); });
  sim.RunToCompletion();
  EXPECT_EQ(seen, SimTime::Minutes(5));
}

TEST(SimulationTest, SchedulingIntoThePastThrows) {
  Simulation sim;
  sim.ScheduleAt(SimTime::Seconds(10), [] {});
  sim.RunToCompletion();
  EXPECT_THROW(sim.ScheduleAt(SimTime::Seconds(5), [] {}), CheckFailure);
}

TEST(SimulationTest, ScheduleAfterIsRelative) {
  Simulation sim;
  std::vector<double> fire_times;
  sim.ScheduleAt(SimTime::Seconds(10), [&] {
    sim.ScheduleAfter(SimTime::Seconds(5),
                      [&] { fire_times.push_back(sim.now().seconds()); });
  });
  sim.RunToCompletion();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_DOUBLE_EQ(fire_times[0], 15.0);
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  auto handle = sim.ScheduleAt(SimTime::Seconds(1), [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.Cancel();
  EXPECT_FALSE(handle.pending());
  sim.RunToCompletion();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, CancelAfterFireIsNoop) {
  Simulation sim;
  auto handle = sim.ScheduleAt(SimTime::Seconds(1), [] {});
  sim.RunToCompletion();
  EXPECT_FALSE(handle.pending());
  handle.Cancel();  // Must not crash.
}

TEST(SimulationTest, DefaultHandleIsInert) {
  Simulation::EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.Cancel();
}

TEST(SimulationTest, RunUntilStopsAtBoundaryAndSetsClock) {
  Simulation sim;
  std::vector<double> fired;
  sim.ScheduleAt(SimTime::Seconds(1), [&] { fired.push_back(1.0); });
  sim.ScheduleAt(SimTime::Seconds(5), [&] { fired.push_back(5.0); });
  sim.RunUntil(SimTime::Seconds(3));
  EXPECT_EQ(fired, std::vector<double>{1.0});
  EXPECT_EQ(sim.now(), SimTime::Seconds(3));
  sim.RunUntil(SimTime::Seconds(10));
  EXPECT_EQ(fired, (std::vector<double>{1.0, 5.0}));
}

TEST(SimulationTest, EventAtBoundaryIncludedInRunUntil) {
  Simulation sim;
  bool fired = false;
  sim.ScheduleAt(SimTime::Seconds(3), [&] { fired = true; });
  sim.RunUntil(SimTime::Seconds(3));
  EXPECT_TRUE(fired);
}

TEST(SimulationTest, RunUntilHonorsBoundaryPastCancelledEvents) {
  // Regression: a cancelled entry at the queue head must not let RunUntil
  // execute a live event beyond the boundary.
  Simulation sim;
  bool late_fired = false;
  auto early = sim.ScheduleAt(SimTime::Seconds(1), [] {});
  sim.ScheduleAt(SimTime::Seconds(100), [&] { late_fired = true; });
  early.Cancel();
  sim.RunUntil(SimTime::Seconds(10));
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(sim.now(), SimTime::Seconds(10));
  sim.RunUntil(SimTime::Seconds(200));
  EXPECT_TRUE(late_fired);
}

TEST(SimulationTest, PeriodicTaskFiresAtInterval) {
  Simulation sim;
  std::vector<double> fire_minutes;
  sim.SchedulePeriodic(SimTime::Minutes(1), SimTime::Minutes(1),
                       [&](SimTime t) { fire_minutes.push_back(t.minutes()); });
  sim.RunUntil(SimTime::Minutes(5.5));
  EXPECT_EQ(fire_minutes, (std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0}));
}

TEST(SimulationTest, PeriodicTasksInterleaveDeterministically) {
  Simulation sim;
  std::vector<char> order;
  sim.SchedulePeriodic(SimTime::Minutes(1), SimTime::Minutes(1),
                       [&](SimTime) { order.push_back('a'); });
  sim.SchedulePeriodic(SimTime::Minutes(1), SimTime::Minutes(1),
                       [&](SimTime) { order.push_back('b'); });
  sim.RunUntil(SimTime::Minutes(3));
  // 'a' was registered first and must stay first at every shared instant.
  EXPECT_EQ(order, (std::vector<char>{'a', 'b', 'a', 'b', 'a', 'b'}));
}

TEST(SimulationTest, ProcessedEventCountTracks) {
  Simulation sim;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(SimTime::Seconds(i), [] {});
  }
  sim.RunToCompletion();
  EXPECT_EQ(sim.processed_events(), 10u);
}

TEST(SimulationTest, StepReturnsFalseWhenEmpty) {
  Simulation sim;
  EXPECT_FALSE(sim.Step());
}

TEST(SimulationTest, EventsScheduledDuringRunExecute) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) {
      sim.ScheduleAfter(SimTime::Seconds(1), recurse);
    }
  };
  sim.ScheduleAt(SimTime::Seconds(0), recurse);
  sim.RunToCompletion();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), SimTime::Seconds(4));
}

}  // namespace
}  // namespace ampere
