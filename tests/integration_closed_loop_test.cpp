// End-to-end closed-loop tests wiring every subsystem by hand (no harness):
// workload -> scheduler -> datacenter -> monitor -> controller -> scheduler.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/core/controller.h"
#include "src/obs/metrics.h"
#include "src/core/experiment.h"
#include "src/sched/scheduler.h"
#include "src/telemetry/power_monitor.h"
#include "src/workload/batch_workload.h"
#include "src/workload/interactive_service.h"

namespace ampere {
namespace {

struct Loop {
  Simulation sim;
  DataCenter dc;
  TimeSeriesDb db;
  Scheduler scheduler;
  PowerMonitor monitor;
  JobIdAllocator ids;
  std::unique_ptr<BatchWorkload> workload;

  static TopologyConfig Topology(bool capping) {
    TopologyConfig config;
    config.num_rows = 1;
    config.racks_per_row = 4;
    config.servers_per_rack = 15;  // 60 servers.
    config.capping_enabled = capping;
    return config;
  }
  static PowerMonitorConfig Noiseless() {
    PowerMonitorConfig c;
    c.noise_sigma_watts = 0.0;
    c.quantize_to_watts = false;
    return c;
  }

  explicit Loop(double rate_per_min, bool capping = false)
      : dc(Topology(capping), &sim),
        scheduler(&dc, SchedulerConfig{}, Rng(11)),
        monitor(&dc, &db, Noiseless(), Rng(12)) {
    BatchWorkloadParams params;
    params.arrivals.base_rate_per_min = rate_per_min;
    workload = std::make_unique<BatchWorkload>(params, &sim, &scheduler,
                                               &ids, Rng(13));
    std::vector<ServerId> all;
    for (int32_t s = 0; s < dc.num_servers(); ++s) {
      all.push_back(ServerId(s));
    }
    monitor.RegisterGroup("row", all);
  }

  std::vector<ServerId> AllServers() const {
    std::vector<ServerId> all;
    for (int32_t s = 0; s < dc.num_servers(); ++s) {
      all.push_back(ServerId(s));
    }
    return all;
  }
};

TEST(ClosedLoopTest, SteadyStateConcurrencyMatchesLittlesLaw) {
  // rate * mean duration jobs in flight once warm.
  Loop loop(30.0);
  loop.workload->Start(SimTime());
  loop.monitor.Start(SimTime::Minutes(1));
  loop.sim.RunUntil(SimTime::Hours(3));
  size_t running = 0;
  for (int32_t s = 0; s < loop.dc.num_servers(); ++s) {
    running += loop.dc.server(ServerId(s)).num_tasks();
  }
  // 30 jobs/min * ~8.6 min mean (truncated lognormal) ~ 260 tasks.
  EXPECT_GT(running, 180u);
  EXPECT_LT(running, 340u);
}

TEST(ClosedLoopTest, ControllerHoldsRowUnderOperatorTarget) {
  // Two rows sharing one scheduler: the controller caps row 0 and the
  // diverted jobs land on row 1, mirroring the production structure where a
  // controlled row sheds load to the rest of the fleet. Power control in a
  // *closed* single row is only possible through queue back-pressure; with
  // an overflow row it works through placement diversion (§3.4).
  Simulation sim;
  TopologyConfig topo;
  topo.num_rows = 2;
  topo.racks_per_row = 2;
  topo.servers_per_rack = 15;  // 30 per row.
  DataCenter dc(topo, &sim);
  TimeSeriesDb db;
  Scheduler scheduler(&dc, SchedulerConfig{}, Rng(11));
  PowerMonitorConfig mc;
  mc.noise_sigma_watts = 0.0;
  mc.quantize_to_watts = false;
  PowerMonitor monitor(&dc, &db, mc, Rng(12));
  std::vector<ServerId> row0(dc.servers_in_row(RowId(0)).begin(),
                             dc.servers_in_row(RowId(0)).end());
  monitor.RegisterGroup("row0", row0);
  JobIdAllocator ids;
  BatchWorkloadParams params;
  params.arrivals.base_rate_per_min = 32.0;  // ~60 % CPU across both rows.
  BatchWorkload workload(params, &sim, &scheduler, &ids, Rng(13));

  workload.Start(SimTime());
  monitor.Start(SimTime::Minutes(1));
  sim.RunUntil(SimTime::Hours(2));
  double uncontrolled = dc.row_power_watts(RowId(0));

  // The budget sits just above the mean demand, so control only has to
  // shave workload peaks — the paper's operating regime. (A target far
  // below mean demand would exceed the authority of the 50 % freeze cap.)
  AmpereControllerConfig config;
  config.effect = FreezeEffectModel(0.025);
  config.et = EtEstimator::Constant(0.015);
  AmpereController controller(&scheduler, &monitor, config);
  double target = uncontrolled * 1.03;
  controller.AddDomain({"row0", row0, target});
  controller.Start(&sim, SimTime::Hours(2) + SimTime::Seconds(1));

  // Count violating samples over the controlled window (after settling).
  struct Counters {
    int violations = 0;
    int samples = 0;
  };
  Counters counters;
  sim.SchedulePeriodic(
      SimTime::Hours(2) + SimTime::Minutes(30) + SimTime::Seconds(2),
      SimTime::Minutes(1), [&](SimTime) {
        ++counters.samples;
        if (monitor.LatestGroupWatts("row0") > target) {
          ++counters.violations;
        }
      });
  sim.RunUntil(SimTime::Hours(8));
  ASSERT_GT(counters.samples, 300);
  EXPECT_LT(static_cast<double>(counters.violations) / counters.samples,
            0.10);
  EXPECT_GT(controller.freeze_ops(), 0u);
  // Diverted load showed up on the uncontrolled row.
  EXPECT_GT(scheduler.placements_in_row(RowId(1)),
            scheduler.placements_in_row(RowId(0)));
}

TEST(ClosedLoopTest, CappingActsAsSafetyNetUnderSpikes) {
  // Capping enabled with a low row budget: the row is throttled, the
  // breaker never trips, and the budget is honored at every event (the
  // budget is chosen above the ladder's floor so hardware can meet it).
  Loop loop(80.0, /*capping=*/true);
  double budget = 60 * 162.5 + 60 * 87.5 * 0.7;
  loop.dc.SetRowCappingBudget(RowId(0), budget);
  loop.workload->Start(SimTime());
  loop.monitor.Start(SimTime::Minutes(1));
  loop.sim.RunUntil(SimTime::Hours(4));
  EXPECT_FALSE(loop.dc.AnyBreakerTripped());
  EXPECT_GT(loop.dc.row_capped_time(RowId(0)), SimTime::Minutes(30));
  EXPECT_LE(loop.dc.row_power_watts(RowId(0)), budget + 1e-6);
}

TEST(ClosedLoopTest, FreezeDrainsAndUnfreezeRefills) {
  // Freeze a busy server: its tasks finish and no new ones arrive; power
  // decays toward idle (the Fig. 4 drain). Unfreeze: it fills back up.
  Loop loop(50.0);
  loop.workload->Start(SimTime());
  loop.sim.RunUntil(SimTime::Hours(2));
  ServerId victim(7);
  double busy_power = loop.dc.server_power_watts(victim);
  ASSERT_GT(busy_power, 170.0);

  // Job durations are clamped at 120 min, so 2.5 h after freezing even the
  // longest resident job has finished.
  loop.scheduler.Freeze(victim);
  loop.sim.RunUntil(SimTime::Hours(4.6));
  double frozen_power = loop.dc.server_power_watts(victim);
  EXPECT_NEAR(frozen_power, 162.5, 1.0);  // At idle.

  loop.scheduler.Unfreeze(victim);
  loop.sim.RunUntil(SimTime::Hours(5.6));
  EXPECT_GT(loop.dc.server_power_watts(victim), frozen_power + 10.0);
}

TEST(ClosedLoopTest, ModelDriftGaugesAreSaneOnClosedLoop) {
  // The controller re-exports journal-fed drift statistics as gauges each
  // tick: rolling RMSE of predicted vs realized row power, and mean E_t
  // margin utilization. Over a steady closed loop both must exist and be
  // sane — the model is imperfect (RMSE > 0) but not wildly wrong.
  obs::MetricsRegistry registry;
  obs::ScopedMetricsRegistry scope(&registry);

  ExperimentConfig config;
  config.seed = 17;
  config.topology.num_rows = 1;
  config.topology.racks_per_row = 2;
  config.topology.servers_per_rack = 30;  // 60 servers.
  config.over_provision_ratio = 0.25;
  config.workload.arrivals.base_rate_per_min = ArrivalRateForNormalizedPower(
      config.topology, config.workload, 0.99, 0.25);
  config.controller.et = EtEstimator::Constant(0.02);
  config.warmup = SimTime::Hours(1);
  config.duration = SimTime::Hours(3);

  ExperimentResult result = RunExperimentToResult(config);
  ASSERT_GT(result.experiment.minutes.size(), 100u);

  obs::MetricsSnapshot snapshot = registry.Snapshot();
  const double* rmse = snapshot.FindGauge("controller.model_rmse.experiment");
  ASSERT_NE(rmse, nullptr);
  EXPECT_TRUE(std::isfinite(*rmse));
  EXPECT_GT(*rmse, 0.0);   // Noise and wander guarantee nonzero error.
  EXPECT_LT(*rmse, 0.25);  // ...but the one-step model is not wildly off.

  const double* util =
      snapshot.FindGauge("controller.et_margin_util.experiment");
  ASSERT_NE(util, nullptr);
  EXPECT_TRUE(std::isfinite(*util));
  // Mean margin use stays within a few multiples of E_t in steady state.
  EXPECT_GT(*util, -5.0);
  EXPECT_LT(*util, 5.0);

  // The same statistics are recomputable from the result's journal summary
  // inputs; the gauges exist exactly because journaling was on.
  EXPECT_GT(result.journal.total_appended, 0u);
}

TEST(ClosedLoopTest, InteractiveServiceCoexistsWithBatch) {
  Loop loop(30.0);
  // Reserve 4 servers for the service.
  std::vector<ServerId> redis{ServerId(0), ServerId(1), ServerId(2),
                              ServerId(3)};
  for (ServerId id : redis) {
    loop.dc.SetReserved(id, true);
  }
  InteractiveServiceParams params;
  params.servers = redis;
  params.requests_per_sec_per_server = 500.0;
  InteractiveService service(params, &loop.sim, &loop.dc, Rng(21));
  service.Run(SimTime::Minutes(1), SimTime::Minutes(31),
              SimTime::Minutes(5));
  loop.workload->Start(SimTime());
  loop.sim.RunUntil(SimTime::Minutes(40));
  // Batch jobs never landed on reserved servers (only the resident task).
  for (ServerId id : redis) {
    EXPECT_EQ(loop.dc.server(id).num_tasks(), 1u);
  }
  EXPECT_GT(service.requests_served(), 10000u);
}

}  // namespace
}  // namespace ampere
