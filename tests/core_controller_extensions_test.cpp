// Tests for the controller extensions: freeze-selection policies and the
// online E_t predictor integration.

#include <gtest/gtest.h>

#include "src/core/controller.h"

namespace ampere {
namespace {

struct Fixture {
  Simulation sim;
  DataCenter dc;
  TimeSeriesDb db;
  Scheduler scheduler;
  PowerMonitor monitor;

  static TopologyConfig Topology() {
    TopologyConfig config;
    config.num_rows = 1;
    config.racks_per_row = 1;
    config.servers_per_rack = 8;
    config.server_capacity = Resources{16.0, 64.0};
    return config;
  }
  static PowerMonitorConfig Noiseless() {
    PowerMonitorConfig config;
    config.noise_sigma_watts = 0.0;
    config.quantize_to_watts = false;
    return config;
  }

  Fixture()
      : dc(Topology(), &sim), scheduler(&dc, SchedulerConfig{}, Rng(3)),
        monitor(&dc, &db, Noiseless(), Rng(4)) {
    std::vector<ServerId> all;
    for (int32_t s = 0; s < dc.num_servers(); ++s) {
      all.push_back(ServerId(s));
    }
    monitor.RegisterGroup("row", all);
  }

  std::vector<ServerId> AllServers() const {
    std::vector<ServerId> all;
    for (int32_t s = 0; s < dc.num_servers(); ++s) {
      all.push_back(ServerId(s));
    }
    return all;
  }

  // Loads server s with `cores` of essentially-permanent work.
  void Load(int32_t s, double cores) {
    dc.PlaceTask(ServerId(s), TaskSpec{JobId(1000 + s),
                                       Resources{cores, cores},
                                       SimTime::Hours(1000)});
  }
};

AmpereControllerConfig BaseConfig() {
  AmpereControllerConfig config;
  config.effect = FreezeEffectModel(0.05);
  config.et = EtEstimator::Constant(0.02);
  return config;
}

TEST(FreezeSelectionTest, LowestPowerFreezesColdServersFirst) {
  Fixture f;
  for (int32_t s = 0; s < 8; ++s) {
    f.Load(s, 2.0 * s);  // Server s utilization grows with s.
  }
  AmpereControllerConfig config = BaseConfig();
  config.selection = FreezeSelection::kLowestPower;
  AmpereController controller(&f.scheduler, &f.monitor, config);
  controller.AddDomain({"row", f.AllServers(), 1600.0});
  f.monitor.SampleOnce(SimTime::Minutes(1));
  controller.Tick(SimTime::Minutes(1));
  ASSERT_GT(controller.frozen_count(0), 0u);
  // The coldest servers (0, 1, ...) are frozen, not the hottest.
  EXPECT_TRUE(f.dc.server(ServerId(0)).frozen());
  EXPECT_FALSE(f.dc.server(ServerId(7)).frozen());
}

TEST(FreezeSelectionTest, RandomSelectionIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    Fixture f;
    for (int32_t s = 0; s < 8; ++s) {
      f.Load(s, 8.0);
    }
    AmpereControllerConfig config = BaseConfig();
    config.selection = FreezeSelection::kRandom;
    config.selection_seed = seed;
    AmpereController controller(&f.scheduler, &f.monitor, config);
    controller.AddDomain({"row", f.AllServers(), 1600.0});
    f.monitor.SampleOnce(SimTime::Minutes(1));
    controller.Tick(SimTime::Minutes(1));
    std::vector<bool> frozen;
    for (int32_t s = 0; s < 8; ++s) {
      frozen.push_back(f.dc.server(ServerId(s)).frozen());
    }
    return frozen;
  };
  EXPECT_EQ(run(1), run(1));
  // Different seeds eventually differ (not guaranteed for any single pair,
  // but these do for this fixture).
  EXPECT_NE(run(2), run(5));
}

TEST(FreezeSelectionTest, RandomSelectionKeepsFrozenSetStable) {
  Fixture f;
  for (int32_t s = 0; s < 8; ++s) {
    f.Load(s, 8.0);
  }
  AmpereControllerConfig config = BaseConfig();
  config.selection = FreezeSelection::kRandom;
  AmpereController controller(&f.scheduler, &f.monitor, config);
  controller.AddDomain({"row", f.AllServers(), 1600.0});
  f.monitor.SampleOnce(SimTime::Minutes(1));
  controller.Tick(SimTime::Minutes(1));
  uint64_t ops = controller.freeze_ops() + controller.unfreeze_ops();
  // Constant power -> constant target count -> retained frozen set.
  for (int m = 2; m <= 6; ++m) {
    f.monitor.SampleOnce(SimTime::Minutes(m));
    controller.Tick(SimTime::Minutes(m));
  }
  EXPECT_EQ(controller.freeze_ops() + controller.unfreeze_ops(), ops);
}

TEST(OnlinePredictorIntegrationTest, ControllerUsesLiveMargin) {
  Fixture f;
  for (int32_t s = 0; s < 8; ++s) {
    f.Load(s, 8.0);  // Power = 1650 W.
  }
  AmpereControllerConfig config = BaseConfig();
  config.use_online_predictor = true;
  config.predictor.bootstrap_margin = 0.0;  // No margin until data exists.
  AmpereController controller(&f.scheduler, &f.monitor, config);
  // Budget exactly at current power: p == 1.0. With zero bootstrap margin
  // the threshold is 1.0 and p is not *above* it, so nothing freezes at
  // first; the closed form still yields u = (1.0 + 0 - 1)/kr = 0.
  controller.AddDomain({"row", f.AllServers(), 1650.0});
  f.monitor.SampleOnce(SimTime::Minutes(1));
  controller.Tick(SimTime::Minutes(1));
  EXPECT_EQ(controller.frozen_count(0), 0u);
  // Feed a long stable history -> margin stays near zero -> still no ops.
  for (int m = 2; m <= 40; ++m) {
    f.monitor.SampleOnce(SimTime::Minutes(m));
    controller.Tick(SimTime::Minutes(m));
  }
  EXPECT_EQ(controller.frozen_count(0), 0u);
}

TEST(OnlinePredictorIntegrationTest, BootstrapMarginTriggersEarlyControl) {
  Fixture f;
  for (int32_t s = 0; s < 8; ++s) {
    f.Load(s, 8.0);
  }
  AmpereControllerConfig config = BaseConfig();
  config.use_online_predictor = true;
  config.predictor.bootstrap_margin = 0.05;  // Conservative until data.
  AmpereController controller(&f.scheduler, &f.monitor, config);
  controller.AddDomain({"row", f.AllServers(), 1650.0});
  f.monitor.SampleOnce(SimTime::Minutes(1));
  controller.Tick(SimTime::Minutes(1));
  // p = 1.0 > 1 - 0.05: the bootstrap margin forces immediate control.
  EXPECT_GT(controller.frozen_count(0), 0u);
}

TEST(HorizonPlanningTest, HorizonOneAndNAgreeForLinearEffect) {
  // Lemma 3.1 at the unit level: identical fixtures controlled with
  // horizon 1 and horizon 12 must freeze the same servers every tick.
  auto run = [](int horizon) {
    Fixture f;
    for (int32_t s = 0; s < 8; ++s) {
      f.Load(s, 2.0 * s);
    }
    AmpereControllerConfig config = BaseConfig();
    config.horizon = horizon;
    AmpereController controller(&f.scheduler, &f.monitor, config);
    controller.AddDomain({"row", f.AllServers(), 1550.0});
    std::vector<bool> frozen;
    for (int m = 1; m <= 5; ++m) {
      f.monitor.SampleOnce(SimTime::Minutes(m));
      controller.Tick(SimTime::Minutes(m));
      for (int32_t s = 0; s < 8; ++s) {
        frozen.push_back(f.dc.server(ServerId(s)).frozen());
      }
    }
    return frozen;
  };
  EXPECT_EQ(run(1), run(12));
}

TEST(HorizonPlanningTest, HorizonReadsFutureEtProfile) {
  // With a per-hour profile, a horizon crossing into a high-E_t hour must
  // plan for the coming surge (greedy still only needs the first step, so
  // the control equals horizon 1 by Lemma 3.1 — but the plan must not
  // crash or misindex when reading future hours).
  Fixture f;
  for (int32_t s = 0; s < 8; ++s) {
    f.Load(s, 8.0);
  }
  std::vector<double> history;
  for (int m = 0; m < 24 * 60; ++m) {
    history.push_back(0.9 + ((m / 60) % 24 == 1 ? 0.0005 * (m % 60) : 0.0));
  }
  AmpereControllerConfig config = BaseConfig();
  config.et = EtEstimator::FromHistory(history, 0, 0.995, 0.02);
  config.horizon = 90;  // Spans more than one hour of forecast.
  AmpereController controller(&f.scheduler, &f.monitor, config);
  controller.AddDomain({"row", f.AllServers(), 1600.0});
  f.monitor.SampleOnce(SimTime::Minutes(55));
  EXPECT_NO_THROW(controller.Tick(SimTime::Minutes(55)));
}

}  // namespace
}  // namespace ampere
