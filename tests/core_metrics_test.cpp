#include "src/core/metrics.h"

#include <gtest/gtest.h>

namespace ampere {
namespace {

TEST(GroupReportTest, FinalizeEmptyIsZeros) {
  GroupReport report;
  report.Finalize();
  EXPECT_DOUBLE_EQ(report.u_mean, 0.0);
  EXPECT_DOUBLE_EQ(report.p_max, 0.0);
  EXPECT_EQ(report.violations, 0);
}

TEST(GroupReportTest, FinalizeComputesSummaries) {
  GroupReport report;
  report.minutes = {
      {SimTime::Minutes(1), 800.0, 0.95, 0.0, false, 10},
      {SimTime::Minutes(2), 850.0, 1.01, 0.25, true, 12},
      {SimTime::Minutes(3), 820.0, 0.98, 0.50, false, 8},
      {SimTime::Minutes(4), 860.0, 1.02, 0.25, true, 11},
  };
  report.Finalize();
  EXPECT_NEAR(report.u_mean, 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(report.u_max, 0.50);
  EXPECT_NEAR(report.p_mean, (0.95 + 1.01 + 0.98 + 1.02) / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(report.p_max, 1.02);
  EXPECT_EQ(report.violations, 2);
}

TEST(GainInTpwTest, MatchesEquation18) {
  // Paper's worked examples (§4.4).
  EXPECT_NEAR(GainInTpw(0.9, 0.25), 0.125, 1e-12);
  EXPECT_NEAR(GainInTpw(0.8, 0.25), 0.0, 1e-12);
  EXPECT_NEAR(GainInTpw(1.0, 0.17), 0.17, 1e-12);
  EXPECT_NEAR(GainInTpw(0.95, 0.25), 0.1875, 1e-12);
}

TEST(GainInTpwTest, NoThroughputLossGainEqualsRatio) {
  for (double ro : {0.13, 0.17, 0.21, 0.25}) {
    EXPECT_NEAR(GainInTpw(1.0, ro), ro, 1e-12);
  }
}

TEST(GainInTpwTest, GainCanBeNegative) {
  EXPECT_LT(GainInTpw(0.7, 0.25), 0.0);
}

}  // namespace
}  // namespace ampere
