// MetricsRegistry semantics: counter/gauge/histogram behavior, thread-sharded
// merge determinism, span aggregation, exposition formats, and snapshot
// isolation between concurrent harness runs (jobs=1 must equal jobs=4).

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/harness/runner.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace ampere {
namespace obs {
namespace {

TEST(MetricsRegistryTest, CounterAccumulatesAcrossAdds) {
  MetricsRegistry registry;
  registry.CounterAdd("ticks", 1);
  registry.CounterAdd("ticks", 2);
  registry.CounterAdd("other", 5);

  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  const uint64_t* ticks = snapshot.FindCounter("ticks");
  ASSERT_NE(ticks, nullptr);
  EXPECT_EQ(*ticks, 3u);
  const uint64_t* other = snapshot.FindCounter("other");
  ASSERT_NE(other, nullptr);
  EXPECT_EQ(*other, 5u);
  EXPECT_EQ(snapshot.FindCounter("missing"), nullptr);
}

TEST(MetricsRegistryTest, GaugeKeepsLatestValue) {
  MetricsRegistry registry;
  registry.GaugeSet("level", 1.0);
  registry.GaugeSet("level", 2.5);
  registry.GaugeSet("level", -0.5);

  MetricsSnapshot snapshot = registry.Snapshot();
  const double* level = snapshot.FindGauge("level");
  ASSERT_NE(level, nullptr);
  EXPECT_DOUBLE_EQ(*level, -0.5);
}

TEST(MetricsRegistryTest, GaugeMergeKeepsLatestSetAcrossThreads) {
  // Two threads write the same gauge; the snapshot must keep the write with
  // the globally latest sequence number, regardless of shard order.
  MetricsRegistry registry;
  registry.GaugeSet("g", 1.0);
  std::thread other([&registry] { registry.GaugeSet("g", 2.0); });
  other.join();
  // This Set happens after the other thread's (join = happens-before), so it
  // must win the merge even though both shards carry a value.
  registry.GaugeSet("g", 3.0);

  MetricsSnapshot snapshot = registry.Snapshot();
  const double* g = snapshot.FindGauge("g");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(*g, 3.0);
}

TEST(MetricsRegistryTest, HistogramBucketsCountAndSum) {
  MetricsRegistry registry;
  std::vector<double> bounds{1.0, 10.0, 100.0};
  registry.HistogramObserve("h", 0.5, bounds);
  registry.HistogramObserve("h", 5.0, bounds);
  registry.HistogramObserve("h", 50.0, bounds);
  registry.HistogramObserve("h", 500.0, bounds);  // Overflow bucket.

  MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramValue* h = snapshot.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 4u);
  EXPECT_DOUBLE_EQ(h->sum, 555.5);
  ASSERT_EQ(h->counts.size(), 4u);
  EXPECT_EQ(h->counts[0], 1u);
  EXPECT_EQ(h->counts[1], 1u);
  EXPECT_EQ(h->counts[2], 1u);
  EXPECT_EQ(h->counts[3], 1u);
  EXPECT_DOUBLE_EQ(h->mean(), 555.5 / 4.0);
  // p50 lies in the (1, 10] bucket, interpolated.
  EXPECT_GT(h->Quantile(0.5), 1.0);
  EXPECT_LE(h->Quantile(0.5), 10.0);
}

TEST(MetricsRegistryTest, ShardedCountersMergeDeterministically) {
  // N threads each add to the same counters from their own shard; the merged
  // snapshot must see the exact totals, every time.
  for (int round = 0; round < 3; ++round) {
    MetricsRegistry registry;
    std::vector<std::thread> threads;
    constexpr int kThreads = 4;
    constexpr int kAdds = 1000;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&registry] {
        for (int i = 0; i < kAdds; ++i) {
          registry.CounterAdd("shared", 1);
          registry.HistogramObserve("lat", 2.0);
        }
      });
    }
    for (auto& t : threads) t.join();

    MetricsSnapshot snapshot = registry.Snapshot();
    const uint64_t* shared = snapshot.FindCounter("shared");
    ASSERT_NE(shared, nullptr);
    EXPECT_EQ(*shared, static_cast<uint64_t>(kThreads * kAdds));
    const HistogramValue* lat = snapshot.FindHistogram("lat");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->count, static_cast<uint64_t>(kThreads * kAdds));
  }
}

TEST(MetricsRegistryTest, SpanProfileAggregates) {
  MetricsRegistry registry;
  registry.SpanRecord("tick", 1000.0);
  registry.SpanRecord("tick", 2000.0);
  registry.SpanRecord("tick", 4000.0);

  MetricsSnapshot snapshot = registry.Snapshot();
  const SpanStats* tick = snapshot.FindSpan("tick");
  ASSERT_NE(tick, nullptr);
  EXPECT_EQ(tick->count, 3u);
  EXPECT_DOUBLE_EQ(tick->total_ns, 7000.0);
  EXPECT_DOUBLE_EQ(tick->min_ns, 1000.0);
  EXPECT_DOUBLE_EQ(tick->max_ns, 4000.0);
  EXPECT_GE(tick->p50_ns(), tick->min_ns);
  EXPECT_LE(tick->p99_ns(), tick->max_ns);
  EXPECT_LE(tick->p50_ns(), tick->p99_ns());
}

TEST(MetricsRegistryTest, ScopedSpanRecordsIntoCurrentRegistry) {
#ifdef AMPERE_OBS_DISABLED
  GTEST_SKIP() << "instrumentation macros compiled out";
#endif
  MetricsRegistry registry;
  ScopedMetricsRegistry scope(&registry);
  {
    AMPERE_SPAN("scoped.work");
  }
  MetricsSnapshot snapshot = registry.Snapshot();
  const SpanStats* span = snapshot.FindSpan("scoped.work");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->count, 1u);
  EXPECT_GT(span->max_ns, 0.0);
}

TEST(MetricsRegistryTest, MacrosRespectRuntimeKillSwitch) {
  MetricsRegistry registry;
  ScopedMetricsRegistry scope(&registry);
  SetEnabled(false);
  AMPERE_COUNTER_ADD("dead.counter", 1);
  AMPERE_GAUGE_SET("dead.gauge", 1.0);
  AMPERE_HISTOGRAM_OBSERVE("dead.hist", 1.0);
  {
    AMPERE_SPAN("dead.span");
  }
  SetEnabled(true);
  EXPECT_TRUE(registry.Snapshot().empty());
}

TEST(MetricsRegistryTest, ScopedRegistryIsolatesWrites) {
  MetricsRegistry outer;
  MetricsRegistry inner;
  ScopedMetricsRegistry outer_scope(&outer);
  CounterAdd("c", 1);
  {
    ScopedMetricsRegistry inner_scope(&inner);
    CounterAdd("c", 10);
  }
  CounterAdd("c", 2);

  const uint64_t* outer_c = outer.Snapshot().FindCounter("c");
  ASSERT_NE(outer_c, nullptr);
  EXPECT_EQ(*outer_c, 3u);
  const uint64_t* inner_c = inner.Snapshot().FindCounter("c");
  ASSERT_NE(inner_c, nullptr);
  EXPECT_EQ(*inner_c, 10u);
}

TEST(MetricsRegistryTest, SnapshotMergeFoldsParts) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.CounterAdd("c", 1);
  b.CounterAdd("c", 2);
  b.CounterAdd("only_b", 7);
  a.GaugeSet("g", 1.0);
  b.GaugeSet("g", 2.0);  // Later Set -> higher global sequence -> wins.
  a.HistogramObserve("h", 1.0);
  b.HistogramObserve("h", 2.0);

  MetricsSnapshot merged = a.Snapshot();
  merged.MergeFrom(b.Snapshot());
  EXPECT_EQ(*merged.FindCounter("c"), 3u);
  EXPECT_EQ(*merged.FindCounter("only_b"), 7u);
  EXPECT_DOUBLE_EQ(*merged.FindGauge("g"), 2.0);
  EXPECT_EQ(merged.FindHistogram("h")->count, 2u);
}

TEST(MetricsRegistryTest, PrometheusTextAndJsonExposition) {
  MetricsRegistry registry;
  registry.CounterAdd("controller.ticks", 3);
  registry.GaugeSet("fleet.queue_length", 4.0);
  registry.HistogramObserve("sample.watts", 2.0, std::vector<double>{1.0, 5.0});
  registry.SpanRecord("controller.tick", 1500.0);

  MetricsSnapshot snapshot = registry.Snapshot();
  std::string prom = snapshot.ToPrometheusText();
  EXPECT_NE(prom.find("ampere_controller_ticks 3"), std::string::npos);
  EXPECT_NE(prom.find("ampere_fleet_queue_length 4"), std::string::npos);
  EXPECT_NE(prom.find("ampere_sample_watts_bucket{le=\"5\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("ampere_sample_watts_count 1"), std::string::npos);
  EXPECT_NE(prom.find("ampere_controller_tick_seconds{quantile=\"0.99\"}"),
            std::string::npos);

  std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"controller.ticks\":3"), std::string::npos);
  EXPECT_NE(json.find("\"fleet.queue_length\":4"), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
}

// --- Snapshot isolation through the harness ------------------------------

// Each run body writes run-specific metric values through the process-global
// instrumentation entry points. With per-run registries installed by the
// runner (--obs), a run's obs snapshot must contain exactly its own writes,
// whether runs execute serially (jobs=1) or concurrently (jobs=4).
TEST(MetricsHarnessTest, PerRunSnapshotsAreIsolatedAcrossJobs) {
  auto make_scenarios = [](std::vector<harness::Scenario>& scenarios) {
    for (uint64_t i = 0; i < 8; ++i) {
      harness::Scenario s;
      s.name = "run" + std::to_string(i);
      s.seed = i;
      s.body = [i](harness::RunContext& context) {
        CounterAdd("run.writes", i + 1);
        GaugeSet("run.id", static_cast<double>(i));
        context.Metric("id", static_cast<double>(i));
      };
      scenarios.push_back(std::move(s));
    }
  };

  harness::RunnerOptions serial;
  serial.jobs = 1;
  serial.capture_obs = true;
  harness::RunnerOptions parallel;
  parallel.jobs = 4;
  parallel.capture_obs = true;

  std::vector<harness::Scenario> scenarios_serial;
  std::vector<harness::Scenario> scenarios_parallel;
  make_scenarios(scenarios_serial);
  make_scenarios(scenarios_parallel);

  harness::ResultTable t1 = harness::RunScenarios(scenarios_serial, serial);
  harness::ResultTable t4 =
      harness::RunScenarios(scenarios_parallel, parallel);

  EXPECT_TRUE(harness::ResultTable::SameData(t1, t4));
  for (size_t i = 0; i < t1.size(); ++i) {
    // Snapshot JSON records exactly this run's writes — identical between
    // jobs=1 and jobs=4, with the run-specific values inside.
    EXPECT_EQ(t1.row(i).obs_json, t4.row(i).obs_json);
    std::string expected_counter =
        "\"run.writes\":" + std::to_string(i + 1);
    EXPECT_NE(t1.row(i).obs_json.find(expected_counter), std::string::npos)
        << t1.row(i).obs_json;
  }
}

// --- Exposition edge cases -----------------------------------------------

TEST(MetricsExpositionTest, PrometheusNamesEscapeNonAlphanumerics) {
  // Domain-prefixed and dotted names carry '/', '.', and '-' — all illegal
  // in a Prometheus metric name and sanitized to '_'. JSON keeps the raw
  // (escaped) name.
  MetricsRegistry registry;
  registry.CounterAdd("dc0/controller.ticks", 2);
  registry.GaugeSet("weird name\"with\\quote", 1.0);

  MetricsSnapshot snapshot = registry.Snapshot();
  std::string prom = snapshot.ToPrometheusText();
  EXPECT_NE(prom.find("ampere_dc0_controller_ticks 2"), std::string::npos);
  EXPECT_EQ(prom.find("dc0/controller"), std::string::npos);
  EXPECT_NE(prom.find("ampere_weird_name_with_quote 1"), std::string::npos);

  std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"dc0/controller.ticks\":2"), std::string::npos);
  EXPECT_NE(json.find("\\\"with\\\\quote"), std::string::npos);
}

TEST(MetricsExpositionTest, EmptyRegistrySnapshotExposesCleanly) {
  MetricsRegistry registry;
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_TRUE(snapshot.empty());
  // Both formats still produce well-formed output with zero metrics.
  EXPECT_EQ(snapshot.ToPrometheusText(), "");
  std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"counters\":{}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{}"), std::string::npos);
}

TEST(MetricsExpositionTest, HistogramOverflowAndUnderflowBuckets) {
  MetricsRegistry registry;
  std::vector<double> bounds{12.5, 99.5};
  registry.HistogramObserve("h", -5.0, bounds);     // Below every bound.
  registry.HistogramObserve("h", 12.5, bounds);     // On the boundary (<=).
  registry.HistogramObserve("h", 1e18, bounds);     // +Inf bucket.

  MetricsSnapshot snapshot = registry.Snapshot();
  const HistogramValue* h = snapshot.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->counts.size(), 3u);
  EXPECT_EQ(h->counts[0], 2u);  // -5 and the boundary 12.5 both land here.
  EXPECT_EQ(h->counts[1], 0u);
  EXPECT_EQ(h->counts[2], 1u);  // The implicit +Inf overflow bucket.

  std::string prom = snapshot.ToPrometheusText();
  // Cumulative le buckets: 2 at le=12.5, 2 at le=99.5, all 3 at +Inf; the
  // +Inf bucket always equals _count.
  EXPECT_NE(prom.find("ampere_h_bucket{le=\"12.5\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("ampere_h_bucket{le=\"99.5\"} 2"), std::string::npos);
  EXPECT_NE(prom.find("ampere_h_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(prom.find("ampere_h_count 3"), std::string::npos);
}

TEST(MetricsExpositionTest, DisjointShardKeySetsMergeToTheUnion) {
  // Two threads write non-overlapping key sets into their own shards; the
  // merged snapshot is the union, name-sorted, with no cross-talk.
  MetricsRegistry registry;
  registry.CounterAdd("main.only", 1);
  registry.HistogramObserve("main.hist", 1.0);
  std::thread other([&registry] {
    registry.CounterAdd("thread.only", 7);
    registry.GaugeSet("thread.gauge", 3.5);
  });
  other.join();

  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(*snapshot.FindCounter("main.only"), 1u);
  EXPECT_EQ(*snapshot.FindCounter("thread.only"), 7u);
  EXPECT_DOUBLE_EQ(*snapshot.FindGauge("thread.gauge"), 3.5);
  EXPECT_EQ(snapshot.FindHistogram("main.hist")->count, 1u);
  // Name-sorted exposition regardless of which shard held which key.
  EXPECT_LT(snapshot.counters[0].name, snapshot.counters[1].name);
}

// --- Domain scoping -------------------------------------------------------

TEST(MetricsDomainTest, ScopedDomainPrefixesInstrumentation) {
#ifdef AMPERE_OBS_DISABLED
  GTEST_SKIP() << "instrumentation macros compiled out";
#endif
  MetricsRegistry registry;
  ScopedMetricsRegistry scope(&registry);
  const DomainId dc1 = InternDomain("dc1/");
  AMPERE_COUNTER_ADD("controller.ticks", 1);  // Root domain: bare name.
  {
    ScopedMetricsDomain domain(dc1);
    AMPERE_COUNTER_ADD("controller.ticks", 1);  // Same site, rebinds.
    AMPERE_GAUGE_SET("queue", 4.0);
    AMPERE_HISTOGRAM_OBSERVE("watts", 2.0);
  }
  AMPERE_COUNTER_ADD("controller.ticks", 1);  // Back to root.

  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(*snapshot.FindCounter("controller.ticks"), 2u);
  EXPECT_EQ(*snapshot.FindCounter("dc1/controller.ticks"), 1u);
  EXPECT_DOUBLE_EQ(*snapshot.FindGauge("dc1/queue"), 4.0);
  EXPECT_EQ(snapshot.FindHistogram("dc1/watts")->count, 1u);
  EXPECT_EQ(snapshot.FindGauge("queue"), nullptr);
}

TEST(MetricsDomainTest, InternDomainIsIdempotentAndRootIsUnprefixed) {
#ifdef AMPERE_OBS_DISABLED
  GTEST_SKIP() << "instrumentation macros compiled out";
#endif
  EXPECT_EQ(InternDomain(""), 0u);
  EXPECT_EQ(DomainPrefix(0), "");
  const DomainId a = InternDomain("dcX/");
  const DomainId b = InternDomain("dcX/");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 0u);
  EXPECT_EQ(DomainPrefix(a), "dcX/");
  // The macro with domain 0 writes bare names.
  MetricsRegistry registry;
  ScopedMetricsRegistry scope(&registry);
  {
    AMPERE_METRICS_DOMAIN(0);
    AMPERE_COUNTER_ADD("root.counter", 1);
  }
  EXPECT_NE(registry.Snapshot().FindCounter("root.counter"), nullptr);
}

}  // namespace
}  // namespace obs
}  // namespace ampere
