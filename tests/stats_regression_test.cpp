#include "src/stats/regression.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace ampere {
namespace {

TEST(FitLinearTest, ExactLine) {
  std::vector<double> x{0.0, 1.0, 2.0, 3.0};
  std::vector<double> y{1.0, 3.0, 5.0, 7.0};
  LinearFit fit = FitLinear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_EQ(fit.count, 4u);
}

TEST(FitLinearTest, NoisyLineRecoversSlope) {
  Rng rng(5);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 5000; ++i) {
    double xi = rng.Uniform(0.0, 10.0);
    x.push_back(xi);
    y.push_back(3.0 * xi - 2.0 + rng.Normal(0.0, 0.5));
  }
  LinearFit fit = FitLinear(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.02);
  EXPECT_NEAR(fit.intercept, -2.0, 0.1);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(FitLinearTest, ConstantXThrows) {
  std::vector<double> x{2.0, 2.0, 2.0};
  std::vector<double> y{1.0, 2.0, 3.0};
  EXPECT_THROW(FitLinear(x, y), CheckFailure);
}

TEST(FitLinearTest, TooFewPointsThrows) {
  std::vector<double> x{1.0};
  std::vector<double> y{1.0};
  EXPECT_THROW(FitLinear(x, y), CheckFailure);
}

TEST(FitThroughOriginTest, ExactProportionalLine) {
  std::vector<double> x{1.0, 2.0, 4.0};
  std::vector<double> y{0.05, 0.10, 0.20};
  LinearFit fit = FitThroughOrigin(x, y);
  EXPECT_NEAR(fit.slope, 0.05, 1e-12);
  EXPECT_DOUBLE_EQ(fit.intercept, 0.0);
}

TEST(FitThroughOriginTest, MinimizesResidualsThroughOrigin) {
  // Points with an offset: through-origin slope is sum(xy)/sum(xx), not the
  // OLS slope.
  std::vector<double> x{1.0, 2.0};
  std::vector<double> y{2.0, 3.0};
  LinearFit fit = FitThroughOrigin(x, y);
  EXPECT_NEAR(fit.slope, (1.0 * 2.0 + 2.0 * 3.0) / (1.0 + 4.0), 1e-12);
}

TEST(FitThroughOriginTest, AllZeroXThrows) {
  std::vector<double> x{0.0, 0.0};
  std::vector<double> y{1.0, 2.0};
  EXPECT_THROW(FitThroughOrigin(x, y), CheckFailure);
}

TEST(QuantilesByBucketTest, GroupsAndComputesQuantiles) {
  // x in [0,1), y = x bucket index value.
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(0.005 + 0.01 * i);          // Spread over [0, 1).
    y.push_back(i < 50 ? 1.0 : 3.0);        // Low half 1.0, high half 3.0.
  }
  std::vector<double> qs{0.5};
  auto buckets = QuantilesByBucket(x, y, 2, qs);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets[0].quantiles[0], 1.0);
  EXPECT_DOUBLE_EQ(buckets[1].quantiles[0], 3.0);
  EXPECT_EQ(buckets[0].count + buckets[1].count, 100u);
}

TEST(QuantilesByBucketTest, EmptyInputYieldsNoBuckets) {
  std::vector<double> qs{0.5};
  EXPECT_TRUE(QuantilesByBucket({}, {}, 4, qs).empty());
}

TEST(QuantilesByBucketTest, DegenerateConstantX) {
  std::vector<double> x{1.0, 1.0, 1.0};
  std::vector<double> y{1.0, 2.0, 3.0};
  std::vector<double> qs{0.5};
  auto buckets = QuantilesByBucket(x, y, 3, qs);
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].count, 3u);
  EXPECT_DOUBLE_EQ(buckets[0].quantiles[0], 2.0);
}

}  // namespace
}  // namespace ampere
