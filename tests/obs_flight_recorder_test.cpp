// Flight recorder semantics: ring eviction, tail/window selection, scoping
// and the runtime kill switch, anomaly policy (trigger types, cooldown,
// per-run cap), the Perfetto/Chrome trace export schema, the postmortem
// artifact, and the observation-only contract (a closed loop is bit-identical
// with the recorder on or off).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/core/campus_experiment.h"
#include "src/core/experiment.h"
#include "src/faults/presets.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/journal.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_export.h"

namespace ampere {
namespace obs {
namespace {

using Type = TimelineEventType;

// Structural JSON check: balanced braces/brackets outside strings, string
// escapes honored. Not a full parser, but catches truncation, stray commas
// into structure, and unescaped quotes — the failure modes of hand-built
// emitters.
bool JsonBalanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

// Every ("tid", "ts") pair of the trace's slice/instant events, in emission
// order (metadata events carry no "ts" and are skipped).
std::vector<std::pair<int, long long>> TraceTimestamps(
    const std::string& json) {
  std::vector<std::pair<int, long long>> out;
  size_t pos = 0;
  while ((pos = json.find("\"ts\":", pos)) != std::string::npos) {
    const long long ts = std::stoll(json.substr(pos + 5));
    const size_t tid_pos = json.find("\"tid\":", pos);
    EXPECT_NE(tid_pos, std::string::npos);
    out.emplace_back(std::stoi(json.substr(tid_pos + 6)), ts);
    pos = tid_pos;
  }
  return out;
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(FlightRecorderTest, RingKeepsMostRecentEventsAfterEviction) {
  FlightRecorder recorder(4);
  EXPECT_TRUE(recorder.empty());
  for (int i = 0; i < 6; ++i) {
    recorder.Append(SimTime::Minutes(i), Type::kTickBegin,
                    static_cast<double>(i));
  }
  EXPECT_EQ(recorder.total_appended(), 6u);
  EXPECT_EQ(recorder.size(), 4u);

  const std::vector<TimelineEvent> all = recorder.All();
  ASSERT_EQ(all.size(), 4u);
  // Oldest two (seq 0, 1) were evicted; survivors are in append order.
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].seq, i + 2);
    EXPECT_DOUBLE_EQ(all[i].a, static_cast<double>(i + 2));
  }
}

TEST(FlightRecorderTest, TailAndWindowSelectSubranges) {
  FlightRecorder recorder(16);
  for (int i = 0; i < 10; ++i) {
    recorder.Append(SimTime::Minutes(i), Type::kTickEnd);
  }
  const std::vector<TimelineEvent> tail = recorder.Tail(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail.front().seq, 7u);
  EXPECT_EQ(tail.back().seq, 9u);
  // Asking for more than live returns everything.
  EXPECT_EQ(recorder.Tail(99).size(), 10u);

  const std::vector<TimelineEvent> window =
      recorder.Window(SimTime::Minutes(2), SimTime::Minutes(5));
  ASSERT_EQ(window.size(), 4u);  // Inclusive on both ends.
  EXPECT_EQ(window.front().seq, 2u);
  EXPECT_EQ(window.back().seq, 5u);
}

TEST(FlightRecorderTest, MacroGatesOnScopeAndRuntimeSwitch) {
#ifdef AMPERE_OBS_DISABLED
  GTEST_SKIP() << "instrumentation macros compiled out";
#endif
  FlightRecorder recorder(8);
  // No recorder installed: the macro is a null-check no-op.
  AMPERE_TIMELINE(SimTime::Minutes(1), Type::kTickBegin, 1.0);
  EXPECT_TRUE(recorder.empty());
  {
    ScopedFlightRecorder scope(&recorder);
    AMPERE_TIMELINE(SimTime::Minutes(1), Type::kTickBegin, 1.0, 2.0,
                    uint64_t{3});
    SetEnabled(false);
    AMPERE_TIMELINE(SimTime::Minutes(2), Type::kTickEnd);
    SetEnabled(true);
    {
      // Nested null scope suspends recording, then restores.
      ScopedFlightRecorder suspend(nullptr);
      AMPERE_TIMELINE(SimTime::Minutes(3), Type::kTickEnd);
    }
    AMPERE_TIMELINE_D(0, SimTime::Minutes(4), Type::kTickEnd);
  }
  AMPERE_TIMELINE(SimTime::Minutes(5), Type::kTickEnd);

  const std::vector<TimelineEvent> all = recorder.All();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].type, Type::kTickBegin);
  EXPECT_DOUBLE_EQ(all[0].a, 1.0);
  EXPECT_DOUBLE_EQ(all[0].b, 2.0);
  EXPECT_EQ(all[0].c, 3u);
  EXPECT_EQ(all[1].time, SimTime::Minutes(4));
}

TEST(FlightRecorderTest, AnomalySinkHonorsPolicyCooldownAndCap) {
  FlightRecorder recorder(32);
  AnomalyPolicy policy;
  policy.on_breaker_trip = true;
  policy.on_capacity_violation = true;
  policy.on_degraded_enter = false;
  policy.max_postmortems = 3;
  policy.cooldown = SimTime::Minutes(10);
  recorder.SetAnomalyPolicy(policy);
  std::vector<TimelineEvent> fired;
  recorder.SetAnomalySink(
      [&fired](const TimelineEvent& trigger) { fired.push_back(trigger); });

  recorder.Append(SimTime::Minutes(1), Type::kTickBegin);     // Not a trigger.
  recorder.Append(SimTime::Minutes(2), Type::kDegradedEnter); // Disabled.
  recorder.Append(SimTime::Minutes(3), Type::kBreakerTrip);   // Fires.
  recorder.Append(SimTime::Minutes(4), Type::kCapacityViolation);  // Cooling.
  recorder.Append(SimTime::Minutes(13), Type::kCapacityViolation);  // Fires.
  recorder.Append(SimTime::Minutes(30), Type::kBreakerTrip);  // Fires (3rd).
  recorder.Append(SimTime::Minutes(60), Type::kBreakerTrip);  // Over the cap.

  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(recorder.anomalies_fired(), 3u);
  EXPECT_EQ(fired[0].type, Type::kBreakerTrip);
  EXPECT_EQ(fired[0].time, SimTime::Minutes(3));
  EXPECT_EQ(fired[1].type, Type::kCapacityViolation);
  EXPECT_EQ(fired[1].time, SimTime::Minutes(13));
  EXPECT_EQ(fired[2].time, SimTime::Minutes(30));

  recorder.Clear();
  EXPECT_TRUE(recorder.empty());
  EXPECT_EQ(recorder.anomalies_fired(), 0u);
}

TEST(FlightRecorderTest, EventJsonCarriesAllFields) {
  TimelineEvent event;
  event.seq = 7;
  event.time = SimTime::Seconds(90);
  event.type = Type::kFreezeRpc;
  event.domain = InternDomain("dc2/");
  event.a = 2.0;
  event.b = 1.0;
  event.c = 41;
  const std::string json = TimelineEventToJson(event);
  EXPECT_TRUE(JsonBalanced(json));
  EXPECT_NE(json.find("\"seq\":7"), std::string::npos);
  EXPECT_NE(json.find("\"time_us\":90000000"), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"freeze_rpc\""), std::string::npos);
  EXPECT_NE(json.find("\"source\":\"controller\""), std::string::npos);
  EXPECT_NE(json.find("\"domain\":\"dc2/\""), std::string::npos);
  EXPECT_NE(json.find("\"c\":41"), std::string::npos);
}

TEST(FlightRecorderTest, PostmortemJsonWindowsEventsAndTailsJournal) {
  FlightRecorder recorder(64);
  recorder.Append(SimTime::Minutes(1), Type::kTickBegin);   // Before window.
  recorder.Append(SimTime::Minutes(12), Type::kTickBegin);  // In window.
  recorder.Append(SimTime::Minutes(15), Type::kCapacityViolation, 1.02);
  const TimelineEvent trigger = recorder.All().back();
  recorder.Append(SimTime::Minutes(15), Type::kTickEnd);    // After trigger.
  recorder.Append(SimTime::Minutes(16), Type::kTickBegin);

  MetricsRegistry registry;
  registry.CounterAdd("controller.ticks", 5);

  DecisionJournal journal(16);
  for (int i = 0; i < 4; ++i) {
    DecisionRecord record;
    record.time = SimTime::Minutes(i);
    record.domain = "exp";
    record.observed_watts = 100.0 + i;
    journal.Append(record);
  }

  PostmortemConfig config;
  config.window = SimTime::Minutes(10);
  config.journal_tail = 2;
  const std::string json = BuildPostmortemJson(
      trigger, recorder, registry.Snapshot(), &journal, config, "unit");

  EXPECT_TRUE(JsonBalanced(json));
  EXPECT_NE(json.find("\"schema\":\"ampere.postmortem.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"run\":\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"trigger\":{\"seq\":2"), std::string::npos);
  // The window [5 min, 15 min] keeps seq 1 and the trigger itself; the
  // minute-1 event is too old and post-trigger events are excluded. Scope
  // the seq checks to the events array — journal records carry seqs too.
  const size_t events_begin = json.find("\"events\":[");
  const size_t events_end = json.find("],\"metrics\":");
  ASSERT_NE(events_begin, std::string::npos);
  ASSERT_NE(events_end, std::string::npos);
  const std::string events = json.substr(events_begin, events_end - events_begin);
  EXPECT_EQ(events.find("\"seq\":0,"), std::string::npos);
  EXPECT_NE(events.find("\"seq\":1,"), std::string::npos);
  EXPECT_EQ(events.find("\"seq\":3,"), std::string::npos);
  EXPECT_EQ(events.find("\"seq\":4,"), std::string::npos);
  // Metrics snapshot rides along.
  EXPECT_NE(json.find("\"controller.ticks\":5"), std::string::npos);
  // Journal tail: the LAST two records only.
  EXPECT_NE(json.find("\"journal_tail\""), std::string::npos);
  EXPECT_EQ(json.find("\"observed_watts\":101"), std::string::npos);
  EXPECT_NE(json.find("\"observed_watts\":102"), std::string::npos);
  EXPECT_NE(json.find("\"observed_watts\":103"), std::string::npos);

  // A null journal yields an empty tail, not a crash.
  const std::string no_journal = BuildPostmortemJson(
      trigger, recorder, registry.Snapshot(), nullptr, config, "unit");
  EXPECT_NE(no_journal.find("\"journal_tail\":[]"), std::string::npos);
}

TEST(TraceExportTest, ChromeTraceSchemaTracksAndPhases) {
  FlightRecorder recorder(64);
  const DomainId dc0 = InternDomain("dc0/");
  const DomainId dc1 = InternDomain("dc1/");
  recorder.AppendWithDomain(dc0, SimTime::Minutes(1), Type::kTickBegin, 10.0);
  recorder.AppendWithDomain(dc0, SimTime::Minutes(1), Type::kTickEnd);
  recorder.AppendWithDomain(dc1, SimTime::Minutes(1), Type::kTickBegin);
  recorder.AppendWithDomain(dc0, SimTime::Minutes(2), Type::kBreakerMarginEnter,
                            95.0, 100.0, 3);
  recorder.Append(SimTime::Minutes(3), Type::kCampusReplan, 500.0, 480.0, 1);

  const std::string json = BuildChromeTraceJson(recorder, "trace-test");
  EXPECT_TRUE(JsonBalanced(json));
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"schema\":\"ampere.trace.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"run\":\"trace-test\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);

  // One thread_name metadata record per distinct (domain, source) track,
  // before any slice.
  EXPECT_NE(json.find("\"args\":{\"name\":\"dc0/controller\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"dc1/controller\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"dc0/power\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"campus\"}"), std::string::npos);
  EXPECT_LT(json.find("\"ph\":\"M\""), json.find("\"ph\":\"B\""));

  // Tick edges pair as B/E slices named "tick"; everything else is an
  // instant with thread scope.
  EXPECT_NE(json.find("\"name\":\"tick\",\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"tick\",\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"breaker_margin_enter\",\"ph\":\"i\",\"s\":"
                      "\"t\""),
            std::string::npos);

  // Simulation-time timestamps in microseconds.
  EXPECT_NE(json.find("\"ts\":60000000"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":180000000"), std::string::npos);
}

TEST(TraceExportTest, CampusTraceHasOneTrackPerDcWithMonotonicTimestamps) {
#ifdef AMPERE_OBS_DISABLED
  GTEST_SKIP() << "instrumentation macros compiled out";
#endif
  ExperimentConfig config;
  config.seed = 20160411;
  config.topology.num_rows = 1;
  config.topology.racks_per_row = 3;
  config.topology.servers_per_rack = 8;  // 24 servers per DC.
  config.controller.effect = FreezeEffectModel(0.05);
  config.controller.et = EtEstimator::Constant(0.02);
  config.warmup = SimTime::Minutes(30);
  config.duration = SimTime::Hours(1);
  config.campus.enabled = true;
  config.campus.num_datacenters = 4;
  config.campus.dc_target_power = {0.99, 0.95, 0.90, 0.85};
  config.obs.flight_recorder = true;

  CampusExperiment experiment(config);
  CampusResult result = experiment.Run();
  ASSERT_NE(experiment.flight_recorder(), nullptr);
  EXPECT_GT(result.timeline_events, 0u);

  const std::string json =
      BuildChromeTraceJson(*experiment.flight_recorder(), "campus");
  EXPECT_TRUE(JsonBalanced(json));
  // Every DC gets its own controller track; campus re-plans get theirs.
  for (int d = 0; d < 4; ++d) {
    const std::string track = "\"args\":{\"name\":\"dc" + std::to_string(d) +
                              "/controller\"}";
    EXPECT_NE(json.find(track), std::string::npos) << "missing track " << d;
  }
  EXPECT_NE(json.find("\"args\":{\"name\":\"campus\"}"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"campus_replan\""), std::string::npos);

  // Timestamps are per-track monotonic (sim time never runs backwards, and
  // the exporter preserves append order).
  const auto stamps = TraceTimestamps(json);
  ASSERT_FALSE(stamps.empty());
  std::map<int, long long> last;
  for (const auto& [tid, ts] : stamps) {
    auto it = last.find(tid);
    if (it != last.end()) {
      EXPECT_LE(it->second, ts) << "track " << tid << " went backwards";
    }
    last[tid] = ts;
  }
  EXPECT_GE(last.size(), 5u);  // 4 controller tracks + campus.
}

TEST(PostmortemArtifactTest, ChaosRunWritesValidatedPostmortem) {
#ifdef AMPERE_OBS_DISABLED
  GTEST_SKIP() << "instrumentation macros compiled out";
#endif
  // A deliberately over-budget run (target 1.03) under the moderate chaos
  // preset, with the breaker-margin threshold forced low so margin
  // crossings definitely appear in the window.
  ExperimentConfig config;
  config.seed = 20160412;
  config.topology.num_rows = 1;
  config.topology.racks_per_row = 4;
  config.topology.servers_per_rack = 20;  // 80 servers.
  config.over_provision_ratio = 0.25;
  config.workload.arrivals.base_rate_per_min = ArrivalRateForNormalizedPower(
      config.topology, config.workload, 1.03, 0.25);
  config.controller.effect = FreezeEffectModel(0.05);
  config.controller.et = EtEstimator::Constant(0.02);
  config.warmup = SimTime::Hours(1);
  config.duration = SimTime::Hours(2);
  config.monitor.breaker_margin_fraction = 0.5;
  auto faults = faults::PresetByName("moderate");
  ASSERT_TRUE(faults.has_value());
  config.faults = *faults;
  config.faults.seed = 99;

  const std::string dir = ::testing::TempDir() + "ampere_postmortem";
  std::filesystem::create_directories(dir);
  config.obs.postmortem_dir = dir;
  config.obs.run_label = "chaos test";
  config.obs.trace_path = dir + "/chaos.trace.json";

  ExperimentResult result = RunExperimentToResult(config);
  // Over-budget by 3% for two hours: violations are certain, so at least
  // one postmortem fired and both artifacts are on the result.
  ASSERT_GE(result.artifacts.size(), 2u);
  EXPECT_EQ(result.artifacts.front(), config.obs.trace_path);
  EXPECT_GT(result.timeline_events, 0u);

  const std::string trace = ReadFileOrEmpty(result.artifacts.front());
  EXPECT_TRUE(JsonBalanced(trace));
  EXPECT_NE(trace.find("\"schema\":\"ampere.trace.v1\""), std::string::npos);
  EXPECT_NE(trace.find("breaker_margin_enter"), std::string::npos);

  const std::string postmortem = ReadFileOrEmpty(result.artifacts[1]);
  ASSERT_FALSE(postmortem.empty()) << result.artifacts[1];
  EXPECT_TRUE(JsonBalanced(postmortem));
  EXPECT_NE(postmortem.find("\"schema\":\"ampere.postmortem.v1\""),
            std::string::npos);
  // Spaces in the label are sanitized out of the file name but preserved in
  // the payload.
  EXPECT_NE(result.artifacts[1].find("postmortem_chaos-test_"),
            std::string::npos);
  EXPECT_NE(postmortem.find("\"run\":\"chaos test\""), std::string::npos);

  // Validate the event window: every "time_us" in the events array lies in
  // [trigger - window, trigger].
  const size_t trigger_pos = postmortem.find("\"trigger\":{");
  ASSERT_NE(trigger_pos, std::string::npos);
  const size_t trigger_time_pos = postmortem.find("\"time_us\":", trigger_pos);
  const long long trigger_us =
      std::stoll(postmortem.substr(trigger_time_pos + 10));
  const size_t window_pos = postmortem.find("\"window_us\":");
  ASSERT_NE(window_pos, std::string::npos);
  const long long window_us = std::stoll(postmortem.substr(window_pos + 12));
  const size_t events_pos = postmortem.find("\"events\":[");
  const size_t events_end = postmortem.find("],\"metrics\":");
  ASSERT_NE(events_pos, std::string::npos);
  ASSERT_NE(events_end, std::string::npos);
  size_t pos = events_pos;
  size_t in_window = 0;
  while ((pos = postmortem.find("\"time_us\":", pos + 1)) < events_end) {
    const long long us = std::stoll(postmortem.substr(pos + 10));
    EXPECT_GE(us, trigger_us - window_us);
    EXPECT_LE(us, trigger_us);
    ++in_window;
  }
  EXPECT_GT(in_window, 1u);

  // Metrics snapshot and journal tail are present and non-trivial.
  EXPECT_NE(postmortem.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(postmortem.find("controller.ticks"), std::string::npos);
  const size_t tail_pos = postmortem.find("\"journal_tail\":[");
  ASSERT_NE(tail_pos, std::string::npos);
  EXPECT_NE(postmortem.find("\"observed_watts\"", tail_pos),
            std::string::npos);
}

TEST(RecorderIdentityTest, ClosedLoopIsBitIdenticalWithRecorderOnOrOff) {
  ExperimentConfig config;
  config.seed = 20160413;
  config.topology.num_rows = 1;
  config.topology.racks_per_row = 4;
  config.topology.servers_per_rack = 20;
  config.over_provision_ratio = 0.25;
  config.workload.arrivals.base_rate_per_min = ArrivalRateForNormalizedPower(
      config.topology, config.workload, 0.97, 0.25);
  config.controller.effect = FreezeEffectModel(0.05);
  config.controller.et = EtEstimator::Constant(0.02);
  config.warmup = SimTime::Minutes(30);
  config.duration = SimTime::Hours(1);

  ExperimentResult off = RunExperimentToResult(config);

  ExperimentConfig with = config;
  with.obs.flight_recorder = true;
  with.obs.recorder_capacity = 64;  // Tiny ring: eviction must not matter.
  ExperimentResult on = RunExperimentToResult(with);

#ifndef AMPERE_OBS_DISABLED
  EXPECT_GT(on.timeline_events, 0u);
#endif
  EXPECT_EQ(off.timeline_events, 0u);
  EXPECT_EQ(off.journal.ToJson(), on.journal.ToJson());
  EXPECT_EQ(off.jobs_completed, on.jobs_completed);
  EXPECT_EQ(off.experiment.violations, on.experiment.violations);
  // Bit-exact, not approximately equal.
  EXPECT_EQ(std::memcmp(&off.experiment.p_max, &on.experiment.p_max,
                        sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(&off.throughput_ratio, &on.throughput_ratio,
                        sizeof(double)),
            0);
  ASSERT_EQ(off.experiment.minutes.size(), on.experiment.minutes.size());
  for (size_t i = 0; i < off.experiment.minutes.size(); ++i) {
    EXPECT_EQ(std::memcmp(&off.experiment.minutes[i].power_watts,
                          &on.experiment.minutes[i].power_watts,
                          sizeof(double)),
              0);
  }
}

}  // namespace
}  // namespace obs
}  // namespace ampere
