// FaultPlan + FaultInjector: determinism, window composition, serialization
// round-trip, stream independence, and the quiescent fast paths the <5%
// overhead budget depends on.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/faults/fault_injector.h"
#include "src/faults/fault_plan.h"
#include "src/faults/presets.h"

namespace ampere {
namespace faults {
namespace {

FaultPlanConfig BusyConfig(uint64_t seed) {
  FaultPlanConfig config;
  config.seed = seed;
  config.sample_dropout_prob = 0.05;
  config.noise_spike_prob = 0.01;
  config.noise_spike_sigma_watts = 15.0;
  config.sensor_bias_watts = 1.0;
  config.stale_windows_per_hour = 0.5;
  config.stale_window_mean = SimTime::Minutes(3);
  config.blackouts_per_hour = 0.25;
  config.blackout_mean = SimTime::Minutes(8);
  config.blackout_channels = 4;
  config.rpc_failure_prob = 0.02;
  return config;
}

// --- FaultPlan generation ---

TEST(FaultPlanTest, GenerateIsAPureFunctionOfConfigAndHorizon) {
  FaultPlanConfig config = BusyConfig(7);
  FaultPlan a = FaultPlan::Generate(config, SimTime::Hours(26));
  FaultPlan b = FaultPlan::Generate(config, SimTime::Hours(26));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.stale_windows().empty());
  EXPECT_FALSE(a.blackout_windows().empty());
}

TEST(FaultPlanTest, DifferentSeedsDifferentSchedules) {
  FaultPlan a = FaultPlan::Generate(BusyConfig(7), SimTime::Hours(26));
  FaultPlan b = FaultPlan::Generate(BusyConfig(8), SimTime::Hours(26));
  EXPECT_NE(a.stale_windows(), b.stale_windows());
}

TEST(FaultPlanTest, WindowsStayInsideHorizonAndChannelRange) {
  const SimTime horizon = SimTime::Hours(26);
  FaultPlan plan = FaultPlan::Generate(BusyConfig(3), horizon);
  for (const FaultWindow& w : plan.stale_windows()) {
    EXPECT_LT(w.begin, w.end);
    EXPECT_LE(w.end, horizon);
    EXPECT_EQ(w.channel, kAllChannels);
  }
  for (const FaultWindow& w : plan.blackout_windows()) {
    EXPECT_LT(w.begin, w.end);
    EXPECT_LE(w.end, horizon);
    EXPECT_LT(w.channel, 4u);
  }
}

TEST(FaultPlanTest, ZeroRatesGenerateNoWindows) {
  FaultPlanConfig config;
  config.sample_dropout_prob = 0.1;  // Per-event only; no window rates.
  FaultPlan plan = FaultPlan::Generate(config, SimTime::Hours(26));
  EXPECT_TRUE(plan.stale_windows().empty());
  EXPECT_TRUE(plan.blackout_windows().empty());
  EXPECT_FALSE(plan.InStaleWindow(SimTime::Hours(1)));
}

TEST(FaultPlanTest, EnablingBlackoutsNeverShiftsTheStaleSchedule) {
  FaultPlanConfig stale_only = BusyConfig(11);
  stale_only.blackouts_per_hour = 0.0;
  FaultPlanConfig both = BusyConfig(11);
  FaultPlan a = FaultPlan::Generate(stale_only, SimTime::Hours(26));
  FaultPlan b = FaultPlan::Generate(both, SimTime::Hours(26));
  EXPECT_EQ(a.stale_windows(), b.stale_windows());  // Forked streams.
  EXPECT_TRUE(a.blackout_windows().empty());
  EXPECT_FALSE(b.blackout_windows().empty());
}

TEST(FaultPlanTest, NormalizeCoalescesOverlappingWindowsPerChannel) {
  std::vector<FaultWindow> raw = {
      {SimTime::Minutes(10), SimTime::Minutes(20), 1},
      {SimTime::Minutes(15), SimTime::Minutes(30), 1},
      {SimTime::Minutes(30), SimTime::Minutes(35), 1},  // Touching: merge.
      {SimTime::Minutes(15), SimTime::Minutes(30), 2},  // Other channel.
      {SimTime::Minutes(5), SimTime::Minutes(5), 1},    // Empty: dropped.
  };
  std::vector<FaultWindow> got = FaultPlan::Normalize(std::move(raw));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0],
            (FaultWindow{SimTime::Minutes(10), SimTime::Minutes(35), 1}));
  EXPECT_EQ(got[1],
            (FaultWindow{SimTime::Minutes(15), SimTime::Minutes(30), 2}));
}

TEST(FaultPlanTest, InStaleWindowMatchesHalfOpenSchedule) {
  FaultPlan plan = FaultPlan::Generate(BusyConfig(5), SimTime::Hours(26));
  ASSERT_FALSE(plan.stale_windows().empty());
  const FaultWindow& w = plan.stale_windows().front();
  EXPECT_TRUE(plan.InStaleWindow(w.begin));
  EXPECT_FALSE(plan.InStaleWindow(w.end));  // Half-open.
  EXPECT_FALSE(plan.InStaleWindow(w.begin - SimTime::Seconds(1)));
}

TEST(FaultPlanTest, ChannelIndexIsStableFnv1a) {
  // Pinned values: the hash must never change across platforms or releases,
  // or serialized plans would replay against different channels.
  EXPECT_EQ(FaultPlan::ChannelIndex("row0", 0xffffffffu),
            0x6d381d11u % 0xffffffffu);
  EXPECT_EQ(FaultPlan::ChannelIndex("row0", 4), 0x6d381d11u % 4);
  EXPECT_LT(FaultPlan::ChannelIndex("experiment", 4), 4u);
  EXPECT_EQ(FaultPlan::ChannelIndex("anything", 0), 0u);
}

// --- Composition ---

TEST(FaultPlanTest, ComposeCombinesHazardsAndUnionsWindows) {
  FaultPlanConfig ca;
  ca.seed = 1;
  ca.sample_dropout_prob = 0.5;
  ca.sensor_bias_watts = 2.0;
  ca.stale_windows_per_hour = 0.5;
  FaultPlanConfig cb;
  cb.seed = 2;
  cb.sample_dropout_prob = 0.5;
  cb.sensor_bias_watts = -0.5;
  cb.stale_windows_per_hour = 0.25;
  FaultPlan a = FaultPlan::Generate(ca, SimTime::Hours(12));
  FaultPlan b = FaultPlan::Generate(cb, SimTime::Hours(24));
  FaultPlan c = FaultPlan::Compose(a, b);

  EXPECT_DOUBLE_EQ(c.config().sample_dropout_prob, 0.75);  // 1-(1-.5)^2.
  EXPECT_DOUBLE_EQ(c.config().sensor_bias_watts, 1.5);     // Biases add.
  EXPECT_DOUBLE_EQ(c.config().stale_windows_per_hour, 0.75);
  EXPECT_EQ(c.horizon(), SimTime::Hours(24));
  EXPECT_NE(c.config().seed, ca.seed);
  EXPECT_NE(c.config().seed, cb.seed);
  // Every parent window instant is still covered in the composed plan.
  for (const FaultPlan* parent : {&a, &b}) {
    for (const FaultWindow& w : parent->stale_windows()) {
      EXPECT_TRUE(c.InStaleWindow(w.begin));
      EXPECT_TRUE(c.InStaleWindow(w.end - SimTime::Seconds(1)));
    }
  }
}

// --- Serialization ---

TEST(FaultPlanTest, SerializeParseRoundTripIsLossless) {
  FaultPlan plan = FaultPlan::Generate(BusyConfig(42), SimTime::Hours(26));
  std::string text = plan.Serialize();
  std::optional<FaultPlan> parsed = FaultPlan::Parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, plan);
  // And the round trip is a fixed point of serialization.
  EXPECT_EQ(parsed->Serialize(), text);
}

TEST(FaultPlanTest, RoundTripPreservesEveryPreset) {
  for (const std::string& name : PresetNames()) {
    auto config = PresetByName(name);
    ASSERT_TRUE(config.has_value()) << name;
    FaultPlan plan = FaultPlan::Generate(*config, SimTime::Hours(26));
    std::optional<FaultPlan> parsed = FaultPlan::Parse(plan.Serialize());
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, plan) << name;
  }
}

TEST(FaultPlanTest, ParseRejectsGarbage) {
  EXPECT_FALSE(FaultPlan::Parse("").has_value());
  EXPECT_FALSE(FaultPlan::Parse("not a plan\n").has_value());
  EXPECT_FALSE(FaultPlan::Parse("faultplan v1\nbogus_key=1\n").has_value());
  EXPECT_FALSE(FaultPlan::Parse("faultplan v1\nseed=abc\n").has_value());
  EXPECT_FALSE(FaultPlan::Parse("faultplan v1\nstale 100\n").has_value());
}

// --- Presets ---

TEST(PresetsTest, KnownNamesResolveUnknownDont) {
  EXPECT_TRUE(PresetByName("none").has_value());
  EXPECT_FALSE(PresetByName("none")->any());
  ASSERT_TRUE(PresetByName("moderate").has_value());
  // The acceptance regime: >= 5% dropout, >= 1% RPC failure.
  EXPECT_GE(PresetByName("moderate")->sample_dropout_prob, 0.05);
  EXPECT_GE(PresetByName("moderate")->rpc_failure_prob, 0.01);
  EXPECT_FALSE(PresetByName("bogus").has_value());
  EXPECT_EQ(PresetNames().size(), 4u);
}

// --- FaultInjector ---

TEST(FaultInjectorTest, SameSeedSameDrawSequence) {
  FaultPlan plan = FaultPlan::Generate(BusyConfig(9), SimTime::Hours(26));
  FaultInjector a(plan);
  FaultInjector b(plan);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.DropServerSample(), b.DropServerSample());
    EXPECT_EQ(a.SensorAdjustWatts(), b.SensorAdjustWatts());
    RpcAttempt ra = a.DrawRpcAttempt();
    RpcAttempt rb = b.DrawRpcAttempt();
    EXPECT_EQ(ra.ok, rb.ok);
    EXPECT_EQ(ra.latency, rb.latency);
  }
  EXPECT_EQ(a.counts(), b.counts());
  EXPECT_GT(a.counts().dropped_samples, 0u);
  EXPECT_GT(a.counts().rpc_attempts, 0u);
}

TEST(FaultInjectorTest, CategoriesDrawFromIndependentStreams) {
  // The dropout sequence must be identical whether or not noise spikes are
  // enabled: each category forks its own stream from the plan seed.
  FaultPlanConfig with_noise = BusyConfig(13);
  FaultPlanConfig no_noise = BusyConfig(13);
  no_noise.noise_spike_prob = 0.0;
  FaultInjector a(FaultPlan::Generate(with_noise, SimTime::Hours(1)));
  FaultInjector b(FaultPlan::Generate(no_noise, SimTime::Hours(1)));
  for (int i = 0; i < 5000; ++i) {
    a.SensorAdjustWatts();  // Advances only a's noise stream.
    EXPECT_EQ(a.DropServerSample(), b.DropServerSample());
  }
}

TEST(FaultInjectorTest, QuiescentDimensionsAreFreeAndCountNothing) {
  FaultPlanConfig config;  // any() == false.
  config.rpc_latency_mean = SimTime();
  FaultInjector injector(FaultPlan::Generate(config, SimTime::Hours(1)));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(injector.DropServerSample());
    EXPECT_DOUBLE_EQ(injector.SensorAdjustWatts(), 0.0);
    EXPECT_FALSE(injector.TelemetryStalled(SimTime::Minutes(i)));
    RpcAttempt attempt = injector.DrawRpcAttempt();
    EXPECT_TRUE(attempt.ok);
    EXPECT_EQ(attempt.latency, SimTime());
  }
  EXPECT_EQ(injector.counts(), FaultCounts{});
}

TEST(FaultInjectorTest, DropoutRateTracksProbability) {
  FaultPlanConfig config;
  config.seed = 21;
  config.sample_dropout_prob = 0.05;
  FaultInjector injector(FaultPlan::Generate(config, SimTime::Hours(1)));
  const int n = 20000;
  for (int i = 0; i < n; ++i) injector.DropServerSample();
  double rate = static_cast<double>(injector.counts().dropped_samples) / n;
  EXPECT_NEAR(rate, 0.05, 0.01);
}

TEST(FaultInjectorTest, BiasAppliesWithoutSpikes) {
  FaultPlanConfig config;
  config.sensor_bias_watts = 2.5;
  FaultInjector injector(FaultPlan::Generate(config, SimTime::Hours(1)));
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(injector.SensorAdjustWatts(), 2.5);
  }
  EXPECT_EQ(injector.counts().noise_spikes, 0u);
}

TEST(FaultInjectorTest, StallAndBlackoutLookupsCountEvents) {
  FaultPlan plan = FaultPlan::Generate(BusyConfig(17), SimTime::Hours(26));
  ASSERT_FALSE(plan.stale_windows().empty());
  ASSERT_FALSE(plan.blackout_windows().empty());
  FaultInjector injector(plan);
  const FaultWindow& stall = plan.stale_windows().front();
  EXPECT_TRUE(injector.TelemetryStalled(stall.begin));
  EXPECT_FALSE(injector.TelemetryStalled(stall.end));
  EXPECT_EQ(injector.counts().telemetry_stalls, 1u);

  // Find a name that hashes onto a blacked-out channel.
  const FaultWindow& dark = plan.blackout_windows().front();
  std::string victim;
  for (int i = 0; i < 64 && victim.empty(); ++i) {
    std::string name = "row" + std::to_string(i);
    if (FaultPlan::ChannelIndex(name, plan.config().blackout_channels) ==
        dark.channel) {
      victim = name;
    }
  }
  ASSERT_FALSE(victim.empty());
  EXPECT_TRUE(injector.ChannelBlackedOut(victim, dark.begin));
  EXPECT_FALSE(injector.ChannelBlackedOut(victim, dark.end));
  EXPECT_EQ(injector.counts().blackout_reads, 1u);
}

TEST(FaultInjectorTest, RpcFailureCertainWhenProbabilityIsOne) {
  FaultPlanConfig config;
  config.rpc_failure_prob = 1.0;
  config.rpc_latency_mean = SimTime::Millis(5);
  FaultInjector injector(FaultPlan::Generate(config, SimTime::Hours(1)));
  for (int i = 0; i < 50; ++i) {
    RpcAttempt attempt = injector.DrawRpcAttempt();
    EXPECT_FALSE(attempt.ok);
    EXPECT_GE(attempt.latency, SimTime());
  }
  EXPECT_EQ(injector.counts().rpc_attempts, 50u);
  EXPECT_EQ(injector.counts().rpc_failures, 50u);
}

}  // namespace
}  // namespace faults
}  // namespace ampere
