// Chaos closed-loop tests: the scheduler/controller invariants from
// fuzz_invariants_test must survive every fault dimension, and a faulted
// run must stay a pure function of (workload seed, fault plan) — the
// DecisionJournal CSV is bit-identical on replay and across harness job
// counts.

#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/controller.h"
#include "src/core/experiment.h"
#include "src/faults/fault_injector.h"
#include "src/faults/fault_plan.h"
#include "src/faults/presets.h"
#include "src/harness/runner.h"
#include "src/sched/scheduler.h"
#include "src/telemetry/power_monitor.h"
#include "src/workload/batch_workload.h"

namespace ampere {
namespace {

TopologyConfig SmallTopology() {
  TopologyConfig config;
  config.num_rows = 3;
  config.racks_per_row = 2;
  config.servers_per_rack = 6;  // 36 servers.
  config.server_capacity = Resources{16.0, 64.0};
  return config;
}

// Recomputed-from-scratch vs incrementally-maintained power must agree
// (same drift guard as fuzz_invariants_test, under chaos this time).
void CheckPowerAggregates(const DataCenter& dc) {
  double total = 0.0;
  for (int32_t r = 0; r < dc.num_rows(); ++r) {
    double row_sum = 0.0;
    for (ServerId id : dc.servers_in_row(RowId(r))) {
      row_sum += dc.server_power_watts(id);
    }
    ASSERT_NEAR(dc.row_power_watts(RowId(r)), row_sum, 1e-6);
    total += row_sum;
  }
  ASSERT_NEAR(dc.total_power_watts(), total, 1e-6);
}

struct ChaosDims {
  const char* name;
  bool dropout;
  bool stale;
  bool rpc;
};

faults::FaultPlanConfig MatrixConfig(const ChaosDims& dims, uint64_t seed) {
  faults::FaultPlanConfig config;
  config.seed = seed;
  if (dims.dropout) config.sample_dropout_prob = 0.30;
  if (dims.stale) {
    config.stale_windows_per_hour = 4.0;
    config.stale_window_mean = SimTime::Minutes(3);
    config.blackouts_per_hour = 2.0;
    config.blackout_mean = SimTime::Minutes(5);
  }
  if (dims.rpc) config.rpc_failure_prob = 0.30;
  return config;
}

// One closed loop on the small topology with an injector attached;
// returns the controller's journal CSV (callers check determinism) after
// asserting the safety invariants.
std::string RunChaosLoop(const ChaosDims& dims, uint64_t workload_seed,
                         uint64_t fault_seed,
                         faults::FaultCounts* counts_out = nullptr) {
  Rng rng(workload_seed);
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  TimeSeriesDb db;
  Scheduler scheduler(&dc, SchedulerConfig{}, rng.Fork(1));
  PowerMonitor monitor(&dc, &db, PowerMonitorConfig{}, rng.Fork(2));
  std::vector<ServerId> all;
  for (int32_t s = 0; s < dc.num_servers(); ++s) all.push_back(ServerId(s));
  monitor.RegisterGroup("all", all);

  faults::FaultPlan plan =
      faults::FaultPlan::Generate(MatrixConfig(dims, fault_seed),
                                  SimTime::Hours(7));
  faults::FaultInjector injector(plan);
  monitor.AttachFaultInjector(&injector);
  scheduler.AttachFaultInjector(&injector);

  JobIdAllocator ids;
  BatchWorkloadParams params;
  params.arrivals.base_rate_per_min = 40.0;
  BatchWorkload workload(params, &sim, &scheduler, &ids, rng.Fork(3));

  AmpereControllerConfig config;
  config.effect = FreezeEffectModel(0.002);  // Tiny: u saturates often.
  config.et = EtEstimator::Constant(0.15);   // Huge margin: always acting.
  config.selection = FreezeSelection::kRandom;
  AmpereController controller(&scheduler, &monitor, config);
  controller.AddDomain({"all", all, 36 * 215.0});

  bool frozen_placement = false;
  scheduler.SetPlacementListener([&](const JobSpec&, ServerId server) {
    if (dc.server(server).frozen()) frozen_placement = true;
  });

  workload.Start(SimTime());
  monitor.Start(SimTime::Minutes(1));
  controller.Start(&sim, SimTime::Minutes(1) + SimTime::Seconds(1));
  sim.RunUntil(SimTime::Hours(6));

  // Invariant 1: chaos never smuggles a job onto a frozen server.
  EXPECT_FALSE(frozen_placement) << dims.name;
  // Invariant 2: even with failing freeze/unfreeze RPCs, the controller's
  // cached frozen set equals the scheduler's actual flags (a failed
  // unfreeze must KEEP the server in the cached set).
  size_t flagged = 0;
  for (int32_t s = 0; s < dc.num_servers(); ++s) {
    if (dc.server(ServerId(s)).frozen()) ++flagged;
  }
  EXPECT_EQ(controller.frozen_count(0), flagged) << dims.name;
  // Invariant 3: power aggregates never drift.
  CheckPowerAggregates(dc);
  // Invariant 4: resource accounting stays sane.
  for (int32_t s = 0; s < dc.num_servers(); ++s) {
    const Server& server = dc.server(ServerId(s));
    EXPECT_TRUE(server.capacity().Fits(server.allocated()));
    EXPECT_TRUE(server.allocated().NonNegative());
  }
  // Invariant 5: the journal still round-trips losslessly.
  std::string csv = controller.journal().ToCsv();
  auto parsed = obs::DecisionJournal::ParseCsv(csv);
  EXPECT_TRUE(parsed.has_value()) << dims.name;
  if (parsed.has_value()) {
    EXPECT_EQ(parsed->size(), controller.journal().size()) << dims.name;
  }
  if (counts_out != nullptr) *counts_out = injector.counts();
  return csv;
}

class ChaosClosedLoopTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(ChaosClosedLoopTest, InvariantsHoldUnderEveryFaultDimension) {
  auto [seed, dims_int] = GetParam();
  static const ChaosDims kMatrix[] = {
      {"dropout", true, false, false},
      {"stale", false, true, false},
      {"rpc", false, false, true},
      {"all", true, true, true},
  };
  const ChaosDims& dims = kMatrix[dims_int];
  faults::FaultCounts counts;
  RunChaosLoop(dims, seed, seed + 1000, &counts);
  // The dimension under test actually fired.
  if (dims.dropout) {
    EXPECT_GT(counts.dropped_samples, 0u) << dims.name;
  }
  if (dims.stale) {
    EXPECT_GT(counts.telemetry_stalls, 0u) << dims.name;
  }
  if (dims.rpc) {
    EXPECT_GT(counts.rpc_failures, 0u) << dims.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FaultMatrix, ChaosClosedLoopTest,
    ::testing::Combine(::testing::Values(99u, 100u),
                       ::testing::Values(0, 1, 2, 3)));

TEST(ChaosDeterminismTest, SameSeedAndPlanReplayBitIdenticalJournal) {
  ChaosDims all{"all", true, true, true};
  faults::FaultCounts counts_a, counts_b;
  std::string a = RunChaosLoop(all, 7, 7001, &counts_a);
  std::string b = RunChaosLoop(all, 7, 7001, &counts_b);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // Bit-identical CSV, including degraded/rpc columns.
  EXPECT_EQ(counts_a, counts_b);

  // A different fault seed yields a different chaos trajectory (so the
  // equality above is not vacuous).
  std::string c = RunChaosLoop(all, 7, 7002);
  EXPECT_NE(a, c);
}

// --- Experiment-level determinism across harness job counts ---

// FNV-1a 64 over the journal CSV, folded to a double-exact 32-bit value so
// it can ride in a metric: if any byte of any record differs between two
// runs, the metric differs and ResultTable::SameData fails.
double CsvFingerprint(const std::string& csv) {
  uint64_t h = 1469598103934665603ull;
  for (char ch : csv) {
    h ^= static_cast<uint8_t>(ch);
    h *= 1099511628211ull;
  }
  return static_cast<double>(static_cast<uint32_t>(h ^ (h >> 32)));
}

ExperimentConfig ChaosExperimentConfig(uint64_t seed) {
  ExperimentConfig config;
  config.seed = seed;
  config.topology = SmallTopology();
  config.workload.arrivals.base_rate_per_min = ArrivalRateForNormalizedPower(
      config.topology, config.workload, 1.0, config.over_provision_ratio);
  config.warmup = SimTime::Minutes(30);
  config.duration = SimTime::Hours(3);
  auto preset = faults::PresetByName("moderate");
  config.faults = *preset;
  config.faults.seed = seed * 31 + 5;
  // Faster window cadence so a 3-hour run reliably hits the degraded paths.
  config.faults.stale_windows_per_hour = 2.0;
  config.faults.blackouts_per_hour = 1.0;
  return config;
}

std::vector<harness::Scenario> ChaosScenarios() {
  std::vector<harness::Scenario> scenarios;
  for (uint64_t seed : {501u, 502u, 503u, 504u}) {
    harness::Scenario scenario;
    scenario.name = "chaos-" + std::to_string(seed);
    scenario.seed = seed;
    scenario.body = [seed](harness::RunContext& context) {
      ControlledExperiment experiment(ChaosExperimentConfig(seed));
      ExperimentResult result = experiment.Run();
      context.Metric("p_max", result.experiment.p_max);
      context.Metric("violations", result.experiment.violations);
      context.Metric("jobs_completed",
                     static_cast<double>(result.jobs_completed));
      context.Metric("degraded_ticks",
                     static_cast<double>(result.degraded_ticks));
      context.Metric("rpc_failures",
                     static_cast<double>(result.fault_counts.rpc_failures));
      context.Metric("dropped_samples",
                     static_cast<double>(
                         result.fault_counts.dropped_samples));
      ASSERT_NE(experiment.controller(), nullptr);
      context.Metric("journal_fp",
                     CsvFingerprint(experiment.controller()
                                        ->journal()
                                        .ToCsv()));
    };
    scenarios.push_back(std::move(scenario));
  }
  return scenarios;
}

TEST(ChaosDeterminismTest, JournalAndMetricsIdenticalAcrossJobCounts) {
  std::vector<harness::Scenario> scenarios = ChaosScenarios();
  harness::RunnerOptions serial;
  serial.jobs = 1;
  harness::RunnerOptions parallel;
  parallel.jobs = 4;
  harness::ResultTable a = harness::RunScenarios(scenarios, serial);
  harness::ResultTable b = harness::RunScenarios(scenarios, parallel);
  for (const harness::ResultRow& row : a.rows()) {
    EXPECT_TRUE(row.ok) << row.scenario << ": " << row.error;
    EXPECT_GT(row.Metric("degraded_ticks"), 0.0) << row.scenario;
  }
  // Metric-for-metric (including the journal-CSV fingerprint): a faulted
  // run is a pure function of its config regardless of worker count.
  EXPECT_TRUE(harness::ResultTable::SameData(a, b));
}

}  // namespace
}  // namespace ampere
