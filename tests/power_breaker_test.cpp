#include "src/power/breaker.h"

#include <gtest/gtest.h>

namespace ampere {
namespace {

BreakerParams Params() {
  BreakerParams p;
  p.tolerance = 1.10;
  p.trip_delay = SimTime::Seconds(30);
  return p;
}

TEST(BreakerTest, StaysClosedUnderBudget) {
  CircuitBreaker b(Params());
  for (int s = 0; s < 100; ++s) {
    EXPECT_FALSE(b.Observe(SimTime::Seconds(s), 900.0, 1000.0));
  }
  EXPECT_FALSE(b.tripped());
}

TEST(BreakerTest, ToleratesMildOverload) {
  CircuitBreaker b(Params());
  // 5 % over budget is inside the 10 % tolerance forever.
  for (int s = 0; s < 1000; ++s) {
    b.Observe(SimTime::Seconds(s), 1050.0, 1000.0);
  }
  EXPECT_FALSE(b.tripped());
}

TEST(BreakerTest, TripsAfterSustainedSevereOverload) {
  CircuitBreaker b(Params());
  bool tripped_now = false;
  for (int s = 0; s <= 35; ++s) {
    tripped_now = b.Observe(SimTime::Seconds(s), 1200.0, 1000.0);
    if (tripped_now) {
      break;
    }
  }
  EXPECT_TRUE(b.tripped());
  EXPECT_TRUE(tripped_now);
  EXPECT_EQ(b.tripped_at(), SimTime::Seconds(30));
}

TEST(BreakerTest, BriefSpikesDoNotTrip) {
  CircuitBreaker b(Params());
  for (int cycle = 0; cycle < 20; ++cycle) {
    SimTime base = SimTime::Minutes(cycle);
    // 10 s of severe overload, then relief.
    for (int s = 0; s < 10; ++s) {
      b.Observe(base + SimTime::Seconds(s), 1300.0, 1000.0);
    }
    b.Observe(base + SimTime::Seconds(10), 800.0, 1000.0);
  }
  EXPECT_FALSE(b.tripped());
}

TEST(BreakerTest, RecoveryResetsOverloadTimer) {
  CircuitBreaker b(Params());
  b.Observe(SimTime::Seconds(0), 1300.0, 1000.0);
  b.Observe(SimTime::Seconds(29), 1300.0, 1000.0);
  b.Observe(SimTime::Seconds(30), 900.0, 1000.0);   // Relief just in time.
  b.Observe(SimTime::Seconds(31), 1300.0, 1000.0);  // Overload restarts.
  b.Observe(SimTime::Seconds(60), 1300.0, 1000.0);  // Only 29 s so far.
  EXPECT_FALSE(b.tripped());
  b.Observe(SimTime::Seconds(61), 1300.0, 1000.0);
  EXPECT_TRUE(b.tripped());
}

TEST(BreakerTest, ResetClearsTrip) {
  CircuitBreaker b(Params());
  b.Observe(SimTime::Seconds(0), 1300.0, 1000.0);
  b.Observe(SimTime::Seconds(31), 1300.0, 1000.0);
  ASSERT_TRUE(b.tripped());
  b.Reset();
  EXPECT_FALSE(b.tripped());
  EXPECT_FALSE(b.Observe(SimTime::Seconds(100), 900.0, 1000.0));
}

TEST(BreakerTest, DefaultConstructible) {
  CircuitBreaker b;
  EXPECT_FALSE(b.tripped());
}

}  // namespace
}  // namespace ampere
