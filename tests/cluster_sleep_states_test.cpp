// Tests for the sleep-state substrate (§5.1 PowerNap-style baseline).

#include <gtest/gtest.h>

#include "src/cluster/datacenter.h"
#include "src/common/check.h"
#include "src/sched/scheduler.h"

namespace ampere {
namespace {

TopologyConfig SleepTopology() {
  TopologyConfig config;
  config.num_rows = 1;
  config.racks_per_row = 1;
  config.servers_per_rack = 4;
  config.server_capacity = Resources{16.0, 64.0};
  config.sleep_fraction = 0.06;  // 15 W.
  config.wake_latency = SimTime::Seconds(30);
  return config;
}

TEST(SleepStateTest, SleepDropsPowerToFloor) {
  Simulation sim;
  DataCenter dc(SleepTopology(), &sim);
  double before = dc.row_power_watts(RowId(0));
  dc.SleepServer(ServerId(0));
  EXPECT_TRUE(dc.server(ServerId(0)).asleep());
  EXPECT_NEAR(dc.server_power_watts(ServerId(0)), 15.0, 1e-9);
  EXPECT_NEAR(dc.row_power_watts(RowId(0)), before - (162.5 - 15.0), 1e-9);
}

TEST(SleepStateTest, CannotSleepBusyServer) {
  Simulation sim;
  DataCenter dc(SleepTopology(), &sim);
  ASSERT_TRUE(dc.PlaceTask(ServerId(0), TaskSpec{JobId(1), Resources{1.0, 1.0},
                                                 SimTime::Minutes(5)}));
  EXPECT_THROW(dc.SleepServer(ServerId(0)), CheckFailure);
}

TEST(SleepStateTest, PlacementOnAsleepServerFails) {
  Simulation sim;
  DataCenter dc(SleepTopology(), &sim);
  dc.SleepServer(ServerId(0));
  EXPECT_FALSE(dc.PlaceTask(ServerId(0),
                            TaskSpec{JobId(1), Resources{1.0, 1.0},
                                     SimTime::Minutes(5)}));
}

TEST(SleepStateTest, WakeTakesLatencyAndBurnsIdlePower) {
  Simulation sim;
  DataCenter dc(SleepTopology(), &sim);
  dc.SleepServer(ServerId(0));
  sim.RunUntil(SimTime::Minutes(10));
  dc.WakeServer(ServerId(0));
  // Booting: draws idle power but is not schedulable yet.
  EXPECT_TRUE(dc.server(ServerId(0)).waking());
  EXPECT_FALSE(dc.server(ServerId(0)).SchedulableState());
  EXPECT_NEAR(dc.server_power_watts(ServerId(0)), 162.5, 1e-9);
  sim.RunUntil(SimTime::Minutes(10) + SimTime::Seconds(29));
  EXPECT_TRUE(dc.server(ServerId(0)).asleep());
  sim.RunUntil(SimTime::Minutes(10) + SimTime::Seconds(31));
  EXPECT_FALSE(dc.server(ServerId(0)).asleep());
  EXPECT_FALSE(dc.server(ServerId(0)).waking());
  EXPECT_TRUE(dc.server(ServerId(0)).SchedulableState());
}

TEST(SleepStateTest, SleepDuringWakeAborts) {
  Simulation sim;
  DataCenter dc(SleepTopology(), &sim);
  dc.SleepServer(ServerId(0));
  dc.WakeServer(ServerId(0));
  dc.SleepServer(ServerId(0));  // Change of heart mid-boot.
  sim.RunUntil(SimTime::Minutes(5));
  EXPECT_TRUE(dc.server(ServerId(0)).asleep());
  EXPECT_FALSE(dc.server(ServerId(0)).waking());
  EXPECT_NEAR(dc.server_power_watts(ServerId(0)), 15.0, 1e-9);
}

TEST(SleepStateTest, WakeIsIdempotent) {
  Simulation sim;
  DataCenter dc(SleepTopology(), &sim);
  dc.SleepServer(ServerId(0));
  dc.WakeServer(ServerId(0));
  dc.WakeServer(ServerId(0));  // No effect while already waking.
  dc.WakeServer(ServerId(1));  // Already awake: no-op.
  sim.RunUntil(SimTime::Minutes(1));
  EXPECT_TRUE(dc.server(ServerId(0)).SchedulableState());
  EXPECT_NEAR(dc.server_power_watts(ServerId(1)), 162.5, 1e-9);
}

TEST(SleepStateTest, SchedulerSkipsAsleepAndWakingServers) {
  Simulation sim;
  DataCenter dc(SleepTopology(), &sim);
  Scheduler scheduler(&dc, SchedulerConfig{}, Rng(3));
  dc.SleepServer(ServerId(0));
  dc.SleepServer(ServerId(1));
  dc.SleepServer(ServerId(2));
  dc.WakeServer(ServerId(2));  // Booting, still not schedulable.
  for (int i = 0; i < 6; ++i) {
    JobSpec job;
    job.id = JobId(i);
    job.demand = Resources{2.0, 2.0};
    job.duration = SimTime::Minutes(5);
    scheduler.Submit(job);
  }
  EXPECT_EQ(dc.server(ServerId(3)).num_tasks(), 6u);
}

TEST(SleepStateTest, AggregatesStayConsistentThroughTransitions) {
  Simulation sim;
  DataCenter dc(SleepTopology(), &sim);
  dc.SleepServer(ServerId(0));
  dc.WakeServer(ServerId(0));
  sim.RunUntil(SimTime::Minutes(1));
  dc.SleepServer(ServerId(1));
  double sum = 0.0;
  for (int32_t s = 0; s < 4; ++s) {
    sum += dc.server_power_watts(ServerId(s));
  }
  EXPECT_NEAR(dc.row_power_watts(RowId(0)), sum, 1e-9);
  EXPECT_NEAR(dc.total_power_watts(), sum, 1e-9);
}

TEST(SleepStateTest, InvalidSleepFractionThrows) {
  Simulation sim;
  TopologyConfig config = SleepTopology();
  config.sleep_fraction = 0.7;  // Above the idle fraction: nonsense.
  EXPECT_THROW(DataCenter(config, &sim), CheckFailure);
}

}  // namespace
}  // namespace ampere
