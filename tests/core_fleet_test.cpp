#include "src/core/fleet.h"

#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/stats/descriptive.h"

namespace ampere {
namespace {

FleetConfig SmallFleet() {
  FleetConfig config;
  config.seed = 7;
  config.topology.num_rows = 3;
  config.topology.racks_per_row = 2;
  config.topology.servers_per_rack = 10;  // 20 per row.
  config.monitor.noise_sigma_watts = 0.0;
  config.monitor.quantize_to_watts = false;
  config.products = {{0.72, 4.0, 0.1, 0.01},
                     {0.80, 12.0, 0.1, 0.01},
                     {0.88, 20.0, 0.1, 0.01}};
  return config;
}

TEST(FleetTest, PerRowLoadLevelsMatchProducts) {
  Fleet fleet(SmallFleet());
  fleet.Run(SimTime::Hours(6));
  // Average row power over the last 3 h, normalized to rated budget.
  for (int32_t r = 0; r < 3; ++r) {
    auto points = fleet.db().QueryView(PowerMonitor::RowSeries(RowId(r)),
                                   SimTime::Hours(3), SimTime::Hours(6));
    ASSERT_FALSE(points.empty());
    double sum = 0.0;
    for (const auto& p : points) {
      sum += p.value;
    }
    double mean = sum / static_cast<double>(points.size());
    double normalized = mean / (20.0 * 250.0);
    double expected = SmallFleet().products[static_cast<size_t>(r)]
                          .target_power;
    EXPECT_NEAR(normalized, expected, 0.05) << "row " << r;
  }
}

TEST(FleetTest, RowAffinityKeepsProductsSeparate) {
  Fleet fleet(SmallFleet());
  fleet.Run(SimTime::Hours(2));
  // Higher-power rows received more placements.
  EXPECT_GT(fleet.scheduler().placements_in_row(RowId(2)),
            fleet.scheduler().placements_in_row(RowId(0)));
  // All jobs went somewhere (no starvation).
  EXPECT_GT(fleet.scheduler().jobs_placed(), 0u);
}

TEST(FleetTest, RatesScaleWithTargetPower) {
  Fleet fleet(SmallFleet());
  EXPECT_LT(fleet.row_rate_per_min(RowId(0)), fleet.row_rate_per_min(RowId(1)));
  EXPECT_LT(fleet.row_rate_per_min(RowId(1)), fleet.row_rate_per_min(RowId(2)));
}

TEST(FleetTest, ProductListShorterThanRowsRepeatsLast) {
  FleetConfig config = SmallFleet();
  config.products = {{0.8, 10.0, 0.1, 0.01}};
  Fleet fleet(config);
  EXPECT_DOUBLE_EQ(fleet.row_rate_per_min(RowId(0)),
                   fleet.row_rate_per_min(RowId(2)));
}

TEST(FleetTest, FlexibleStreamAddsUnpinnedLoad) {
  FleetConfig config = SmallFleet();
  // Cool, symmetric pinned floors plus a flexible stream.
  config.products = {{0.70, 4.0, 0.0, 0.005},
                     {0.70, 12.0, 0.0, 0.005},
                     {0.70, 20.0, 0.0, 0.005}};
  config.flexible_target_power = 0.06;
  config.flexible.diurnal_amplitude = 0.0;
  config.flexible.ar_sigma = 0.005;
  Fleet fleet(config);
  fleet.Run(SimTime::Hours(4));
  // Mean row power over the last 2 h should sit near 0.76 of rated.
  for (int32_t r = 0; r < 3; ++r) {
    auto points = fleet.db().QueryView(PowerMonitor::RowSeries(RowId(r)),
                                   SimTime::Hours(2), SimTime::Hours(4));
    double sum = 0.0;
    for (const auto& point : points) {
      sum += point.value;
    }
    double normalized =
        sum / static_cast<double>(points.size()) / (20.0 * 250.0);
    EXPECT_NEAR(normalized, 0.76, 0.04) << "row " << r;
  }
}

TEST(FleetTest, FlexibleStreamUnreachableTargetThrows) {
  FleetConfig config = SmallFleet();
  config.flexible_target_power = 0.9;  // Beyond the dynamic range (0.35).
  EXPECT_THROW(Fleet{config}, CheckFailure);
}

TEST(FleetTest, EmptyProductsThrows) {
  FleetConfig config = SmallFleet();
  config.products.clear();
  EXPECT_THROW(Fleet{config}, CheckFailure);
}

TEST(FleetTest, IncrementalAggregatesStayWithinDriftBoundOverSevenDays) {
  // Seven days of steady churn pushes the incremental rack/row/dc power
  // aggregates through hundreds of thousands of delta updates — several
  // resummation epochs (kResumIntervalMutations apart). At any point between
  // snaps the accumulated float drift must stay within 1e-9 W of a full
  // recomputation from the per-server caches.
  Fleet fleet(SmallFleet());
  fleet.Run(SimTime::Hours(24 * 7));
  DataCenter& dc = fleet.dc();
  // The run crossed at least one snap (the counter would otherwise hold the
  // full mutation count of the week).
  EXPECT_LT(dc.power_mutations_since_resum(),
            DataCenter::kResumIntervalMutations);
  for (int32_t r = 0; r < dc.num_rows(); ++r) {
    EXPECT_NEAR(dc.row_power_watts(RowId(r)), dc.ExactRowPowerWatts(RowId(r)),
                1e-9)
        << "row " << r;
  }
  for (int32_t k = 0; k < dc.num_racks(); ++k) {
    EXPECT_NEAR(dc.rack_power_watts(RackId(k)),
                dc.ExactRackPowerWatts(RackId(k)), 1e-9)
        << "rack " << k;
  }
  EXPECT_NEAR(dc.total_power_watts(), dc.ExactTotalPowerWatts(), 1e-9);
}

}  // namespace
}  // namespace ampere
