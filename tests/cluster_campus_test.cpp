#include "src/cluster/campus.h"

#include <gtest/gtest.h>

#include "src/common/check.h"

namespace ampere {
namespace {

CampusConfig SmallCampus(int num_dcs = 4) {
  CampusConfig config;
  config.num_datacenters = num_dcs;
  config.datacenter.num_rows = 2;
  config.datacenter.racks_per_row = 2;
  config.datacenter.servers_per_rack = 4;
  config.datacenter.power_model.rated_watts = 250.0;
  config.datacenter.power_model.idle_fraction = 0.65;
  return config;
}

TEST(CampusTest, TopologyCounts) {
  Simulation sim;
  Campus campus(SmallCampus(), &sim);
  EXPECT_EQ(campus.num_datacenters(), 4);
  EXPECT_EQ(campus.servers_per_datacenter(), 16);
  EXPECT_EQ(campus.total_servers(), 64);
  EXPECT_EQ(campus.dc(DataCenterId(2)).num_rows(), 2);
}

TEST(CampusTest, DefaultContractsAreRatedProvisioning) {
  Simulation sim;
  Campus campus(SmallCampus(), &sim);
  // Each DC: 16 servers * 250 W rated.
  EXPECT_DOUBLE_EQ(campus.dc_contract_watts(DataCenterId(0)), 16 * 250.0);
  EXPECT_DOUBLE_EQ(campus.campus_contract_watts(), 4 * 16 * 250.0);
}

TEST(CampusTest, ExplicitContractsLastValueRepeats) {
  CampusConfig config = SmallCampus();
  config.dc_contract_watts = {3000.0, 3500.0};
  Simulation sim;
  Campus campus(config, &sim);
  EXPECT_DOUBLE_EQ(campus.dc_contract_watts(DataCenterId(0)), 3000.0);
  EXPECT_DOUBLE_EQ(campus.dc_contract_watts(DataCenterId(1)), 3500.0);
  EXPECT_DOUBLE_EQ(campus.dc_contract_watts(DataCenterId(2)), 3500.0);
  EXPECT_DOUBLE_EQ(campus.dc_contract_watts(DataCenterId(3)), 3500.0);
  EXPECT_DOUBLE_EQ(campus.campus_contract_watts(),
                   3000.0 + 3 * 3500.0);
}

TEST(CampusTest, ExplicitCampusContractOverridesSum) {
  CampusConfig config = SmallCampus();
  config.campus_contract_watts = 12000.0;
  Simulation sim;
  Campus campus(config, &sim);
  EXPECT_DOUBLE_EQ(campus.campus_contract_watts(), 12000.0);
}

TEST(CampusTest, PowerAggregatesAcrossDcs) {
  Simulation sim;
  Campus campus(SmallCampus(), &sim);
  const double idle = 250.0 * 0.65;
  EXPECT_NEAR(campus.TotalPowerWatts(), 64 * idle, 1e-9);
  EXPECT_NEAR(campus.ExactTotalPowerWatts(), 64 * idle, 1e-9);

  // Load one DC; the campus total follows and stays the sum of DC totals.
  DataCenter& dc1 = campus.dc(DataCenterId(1));
  TaskSpec spec{JobId(1), Resources{8.0, 16.0}, SimTime::Minutes(5)};
  ASSERT_TRUE(dc1.PlaceTask(ServerId(0), spec));
  double expected = 0.0;
  for (int d = 0; d < campus.num_datacenters(); ++d) {
    expected += campus.dc(DataCenterId(d)).total_power_watts();
  }
  EXPECT_NEAR(campus.TotalPowerWatts(), expected, 1e-9);
  EXPECT_GT(campus.TotalPowerWatts(), 64 * idle);

  campus.ResummatePowerAggregates();
  EXPECT_NEAR(campus.TotalPowerWatts(), campus.ExactTotalPowerWatts(), 1e-9);
}

TEST(CampusTest, NoBreakerTrippedAtIdle) {
  Simulation sim;
  Campus campus(SmallCampus(), &sim);
  EXPECT_FALSE(campus.AnyBreakerTripped());
}

TEST(CampusTest, DcsAreIndependent) {
  Simulation sim;
  Campus campus(SmallCampus(2), &sim);
  TaskSpec spec{JobId(7), Resources{4.0, 8.0}, SimTime::Minutes(5)};
  ASSERT_TRUE(campus.dc(DataCenterId(0)).PlaceTask(ServerId(3), spec));
  // Server 3 of DC 1 is a different machine: still idle.
  const double idle = 250.0 * 0.65;
  EXPECT_NEAR(campus.dc(DataCenterId(1)).server_power_watts(ServerId(3)),
              idle, 1e-9);
  EXPECT_GT(campus.dc(DataCenterId(0)).server_power_watts(ServerId(3)), idle);
}

TEST(CampusTest, RejectsEmptyCampus) {
  CampusConfig config = SmallCampus(0);
  Simulation sim;
  EXPECT_THROW(Campus(config, &sim), CheckFailure);
}

}  // namespace
}  // namespace ampere
