#include "src/telemetry/csv_export.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/check.h"

namespace ampere {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

TEST(CsvExportTest, HeaderAndAlignedRows) {
  TimeSeriesDb db;
  db.Append("a", SimTime::Minutes(1), 10.0);
  db.Append("a", SimTime::Minutes(2), 20.0);
  db.Append("b", SimTime::Minutes(1), 100.0);
  db.Append("b", SimTime::Minutes(2), 200.0);
  std::ostringstream out;
  std::vector<std::string> series{"a", "b"};
  ExportCsv(db, series, out);
  auto lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "minutes,a,b");
  EXPECT_EQ(lines[1], "1.0000,10.0000,100.0000");
  EXPECT_EQ(lines[2], "2.0000,20.0000,200.0000");
}

TEST(CsvExportTest, MissingCellsAreEmpty) {
  TimeSeriesDb db;
  db.Append("a", SimTime::Minutes(1), 1.0);
  db.Append("b", SimTime::Minutes(2), 2.0);
  std::ostringstream out;
  std::vector<std::string> series{"a", "b"};
  ExportCsv(db, series, out);
  auto lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1], "1.0000,1.0000,");
  EXPECT_EQ(lines[2], "2.0000,,2.0000");
}

TEST(CsvExportTest, UnknownSeriesYieldsEmptyColumn) {
  TimeSeriesDb db;
  db.Append("a", SimTime::Minutes(1), 1.0);
  std::ostringstream out;
  std::vector<std::string> series{"a", "missing"};
  ExportCsv(db, series, out);
  auto lines = Lines(out.str());
  EXPECT_EQ(lines[1], "1.0000,1.0000,");
}

TEST(CsvExportTest, EmptySeriesListThrows) {
  TimeSeriesDb db;
  std::ostringstream out;
  EXPECT_THROW(ExportCsv(db, {}, out), CheckFailure);
}

TEST(CsvExportTest, FileExport) {
  TimeSeriesDb db;
  db.Append("x", SimTime::Minutes(1), 5.0);
  std::vector<std::string> series{"x"};
  ExportCsvFile(db, series, "/tmp/ampere_csv_test.csv");
  std::ifstream in("/tmp/ampere_csv_test.csv");
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "minutes,x");
}

}  // namespace
}  // namespace ampere
