// Determinism contract for the intra-run parallel layer.
//
// The PR that introduced the sharded sample pass and the parallel power
// resummation promises: results are a pure function of the config, never of
// the job count. These tests pin that contract at three levels:
//
//   1. ParallelFor partitioning — shard boundaries are a pure function of
//      (range, grain, lane count); every index is visited exactly once, in
//      disjoint ascending shards; degenerate ranges take the serial path.
//   2. Counter-based noise streams — a variate is a pure function of
//      (seed, stream, tick); the two-stage key derivation (hoisted TickBase
//      + per-stream StreamKey) matches the one-shot Key; exact pinned
//      values catch silent mixer changes.
//   3. The jobs matrix — a full closed-loop experiment run at jobs in
//      {1, 2, 8} produces byte-identical artifacts: the harness ResultTable
//      CSV, the controller DecisionJournal CSV, and the entire TimeSeriesDb
//      (per-server series included) serialized to CSV.
//
// jobs=8 on a small machine oversubscribes — that is intentional: heavy
// lane interleaving is exactly when a determinism bug would show.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/cluster/datacenter.h"
#include "src/common/rng.h"
#include "src/common/span_kernels.h"
#include "src/common/thread_pool.h"
#include "src/core/campus_experiment.h"
#include "src/core/controller.h"
#include "src/core/experiment.h"
#include "src/telemetry/cold_store.h"
#include "src/harness/grid.h"
#include "src/harness/runner.h"
#include "src/telemetry/csv_export.h"
#include "src/telemetry/power_monitor.h"
#include "src/telemetry/timeseries_db.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20210806;

// --- 1. ParallelFor partitioning ----------------------------------------

// Runs ParallelFor over [begin, end) on `pool`, recording every shard range
// and stamping a per-index visit counter. Returns the shard ranges sorted
// by begin.
std::vector<std::pair<size_t, size_t>> RunRegion(ThreadPool* pool,
                                                 size_t begin, size_t end,
                                                 size_t grain,
                                                 std::vector<int>* visits) {
  std::vector<std::atomic<int>> counters(end > begin ? end - begin : 0);
  std::mutex mutex;
  std::vector<std::pair<size_t, size_t>> shards;
  ParallelFor(pool, begin, end, grain, [&](size_t b, size_t e) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      shards.emplace_back(b, e);
    }
    for (size_t i = b; i < e; ++i) {
      counters[i - begin].fetch_add(1, std::memory_order_relaxed);
    }
  });
  if (visits != nullptr) {
    visits->clear();
    for (const auto& c : counters) {
      visits->push_back(c.load(std::memory_order_relaxed));
    }
  }
  std::sort(shards.begin(), shards.end());
  return shards;
}

void ExpectExactCover(const std::vector<std::pair<size_t, size_t>>& shards,
                      size_t begin, size_t end,
                      const std::vector<int>& visits) {
  // Disjoint ascending shards covering [begin, end).
  size_t cursor = begin;
  for (const auto& [b, e] : shards) {
    EXPECT_EQ(b, cursor) << "gap or overlap at shard start";
    EXPECT_LT(b, e) << "empty shard dispatched";
    cursor = e;
  }
  EXPECT_EQ(cursor, end);
  // Every index exactly once.
  for (size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i], 1) << "index " << begin + i << " visited "
                            << visits[i] << " times";
  }
}

TEST(ParallelForPartitionTest, EmptyRangeInvokesNothing) {
  ThreadPool pool(3);
  std::vector<int> visits;
  auto shards = RunRegion(&pool, 5, 5, 1, &visits);
  EXPECT_TRUE(shards.empty());
  EXPECT_TRUE(visits.empty());
}

TEST(ParallelForPartitionTest, NullPoolTakesSerialPathAsOneShard) {
  std::vector<int> visits;
  auto shards = RunRegion(nullptr, 3, 103, 8, &visits);
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0], (std::pair<size_t, size_t>{3, 103}));
  ExpectExactCover(shards, 3, 103, visits);
}

TEST(ParallelForPartitionTest, RangeAtOrUnderGrainStaysSerial) {
  ThreadPool pool(3);
  std::vector<int> visits;
  auto shards = RunRegion(&pool, 0, 16, 16, &visits);
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0], (std::pair<size_t, size_t>{0, 16}));
  ExpectExactCover(shards, 0, 16, visits);
}

TEST(ParallelForPartitionTest, NonDivisibleRangeCoversEveryIndexOnce) {
  ThreadPool pool(3);  // 4 lanes with the caller.
  for (size_t n : {2u, 3u, 5u, 10u, 101u, 1003u}) {
    std::vector<int> visits;
    auto shards = RunRegion(&pool, 0, n, 1, &visits);
    ExpectExactCover(shards, 0, n, visits);
  }
}

TEST(ParallelForPartitionTest, FewerElementsThanLanes) {
  ThreadPool pool(7);  // 8 lanes, 3 elements.
  std::vector<int> visits;
  auto shards = RunRegion(&pool, 0, 3, 1, &visits);
  ExpectExactCover(shards, 0, 3, visits);
  EXPECT_LE(shards.size(), 3u) << "more shards than elements";
}

TEST(ParallelForPartitionTest, GrainBoundsShardCount) {
  ThreadPool pool(7);
  std::vector<int> visits;
  auto shards = RunRegion(&pool, 0, 100, 40, &visits);
  ExpectExactCover(shards, 0, 100, visits);
  for (const auto& [b, e] : shards) {
    EXPECT_GE(e - b, 40u) << "shard smaller than grain";
  }
}

TEST(ParallelForPartitionTest, BoundariesAreDeterministic) {
  ThreadPool pool(3);
  auto first = RunRegion(&pool, 0, 1003, 10, nullptr);
  for (int repeat = 0; repeat < 8; ++repeat) {
    auto again = RunRegion(&pool, 0, 1003, 10, nullptr);
    EXPECT_EQ(again, first) << "shard boundaries changed between runs";
  }
}

// --- 2. Counter-based noise streams -------------------------------------

// The hoisted two-stage derivation must equal the one-shot key for every
// triple; batch consumers rely on this to hoist TickBase out of the
// per-stream loop without changing a single bit.
static_assert(counter_rng::Key(1, 2, 3) ==
              counter_rng::StreamKey(counter_rng::TickBase(1, 3), 2));
static_assert(counter_rng::Key(0, 0, 0) ==
              counter_rng::StreamKey(counter_rng::TickBase(0, 0), 0));

TEST(CounterRngTest, TwoStageDerivationMatchesOneShotKey) {
  Rng rng(kSeed);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t seed = rng.NextU64();
    const uint64_t stream = rng.NextU64() % 4096;
    const uint64_t tick = rng.NextU64() % 100000;
    EXPECT_EQ(counter_rng::Key(seed, stream, tick),
              counter_rng::StreamKey(counter_rng::TickBase(seed, tick),
                                     stream));
  }
}

TEST(CounterRngTest, VariatesArePureFunctionsOfTheKey) {
  const uint64_t key = counter_rng::Key(kSeed, 17, 93);
  const auto a = counter_rng::StandardNormalPair(key);
  const auto b = counter_rng::StandardNormalPair(key);
  EXPECT_EQ(a.z0, b.z0);
  EXPECT_EQ(a.z1, b.z1);
  EXPECT_EQ(counter_rng::StandardNormal(key), a.z0);
  EXPECT_EQ(counter_rng::U64(key), counter_rng::U64(key));
}

TEST(CounterRngTest, PinnedValuesCatchSilentMixerChanges) {
  // Changing the mixer silently invalidates every committed golden; these
  // pins make the change loud. Regenerating them is deliberate work, like
  // regenerating tests/golden/.
  EXPECT_EQ(counter_rng::Key(1, 2, 3), 0x4597cad65a5171b4ULL);
  EXPECT_EQ(counter_rng::U64(counter_rng::Key(42, 0, 0)),
            0xde831df328d6f959ULL);
  const auto pair = counter_rng::StandardNormalPair(counter_rng::Key(7, 11, 13));
  EXPECT_DOUBLE_EQ(pair.z0, 0.18342037207316905);
  EXPECT_DOUBLE_EQ(pair.z1, 0.77187129066730675);
}

TEST(CounterRngTest, NeighboringStreamsAndTicksDecorrelate) {
  // Loose distribution sanity over a structured key grid (the pattern the
  // sampler actually uses: consecutive streams at consecutive ticks).
  double sum = 0.0, sum_sq = 0.0;
  int n = 0;
  for (uint64_t tick = 0; tick < 200; ++tick) {
    const uint64_t base = counter_rng::TickBase(kSeed, tick);
    for (uint64_t stream = 0; stream < 250; ++stream) {
      const auto pair =
          counter_rng::StandardNormalPair(counter_rng::StreamKey(base, stream));
      for (double z : {pair.z0, pair.z1}) {
        sum += z;
        sum_sq += z * z;
        ++n;
      }
    }
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

// --- 2b. Batched kernels vs their scalar twins ---------------------------
//
// The vectorized span kernels must be bit-identical to the per-element code
// they replaced: the batched Box-Muller is a strip-mined restructure of
// StandardNormalPair, PowerSpanUniformFreq repeats the scalar model's
// expressions in the same operand order, and SumBlocked4's association is a
// pure function of span length. Any divergence silently invalidates the
// byte-identity contract, so these tests pin the identities directly.

TEST(BatchedKernelIdentityTest, NoiseSpanMatchesScalarPairs) {
  // Lengths straddle the kernel's internal 64-pair block: 1, odd tails,
  // exactly one block, one block + 1, and two blocks + ragged tail.
  for (size_t num_pairs : {size_t{1}, size_t{3}, size_t{7}, size_t{64},
                           size_t{65}, size_t{130}}) {
    for (uint64_t tick : {uint64_t{0}, uint64_t{977}}) {
      const uint64_t base = counter_rng::TickBase(kSeed, tick);
      const uint64_t first_stream = 5;
      std::vector<double> z(2 * num_pairs, 0.0);
      counter_rng::StandardNormalSpan(base, first_stream, num_pairs,
                                      z.data());
      for (size_t k = 0; k < num_pairs; ++k) {
        const auto pair = counter_rng::StandardNormalPair(
            counter_rng::StreamKey(base, first_stream + k));
        EXPECT_EQ(z[2 * k], pair.z0)
            << "pair " << k << " of " << num_pairs << " at tick " << tick;
        EXPECT_EQ(z[2 * k + 1], pair.z1)
            << "pair " << k << " of " << num_pairs << " at tick " << tick;
      }
    }
  }
}

TEST(BatchedKernelIdentityTest, NoiseSpanReproducesPinnedValues) {
  // The same pins PinnedValuesCatchSilentMixerChanges holds for the scalar
  // path: Key(7, 11, 13) == StreamKey(TickBase(7, 13), 11), so a one-pair
  // span starting at stream 11 must reproduce them exactly.
  double z[2] = {0.0, 0.0};
  counter_rng::StandardNormalSpan(counter_rng::TickBase(7, 13), 11, 1, z);
  EXPECT_DOUBLE_EQ(z[0], 0.18342037207316905);
  EXPECT_DOUBLE_EQ(z[1], 0.77187129066730675);
}

TEST(BatchedKernelIdentityTest, SumBlocked4DispatcherMatchesPortable) {
  // In a TU compiled without -mavx2 this pins dispatcher == portable; the
  // companion TU (span_kernels_avx2_test.cpp, compiled with -mavx2) pins
  // intrinsic == portable on AVX2 hardware. Together: same bits everywhere.
  Rng rng(kSeed);
  std::vector<double> x(423);
  for (double& v : x) {
    v = rng.Uniform(80.0, 260.0);
  }
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{7},
                   size_t{42}, size_t{417}, size_t{420}, size_t{423}}) {
    EXPECT_EQ(span_kernels::SumBlocked4(x.data(), n),
              span_kernels::SumBlocked4Portable(x.data(), n))
        << "n=" << n;
  }
  // SumSequential is the plain left-to-right loop — pin it against a
  // hand-rolled accumulation so a "smart" rewrite cannot sneak in.
  double expected = 0.0;
  for (size_t i = 0; i < 417; ++i) {
    expected += x[i];
  }
  EXPECT_EQ(span_kernels::SumSequential(x.data(), 417), expected);
}

TEST(BatchedKernelIdentityTest, PowerSpanUniformFreqMatchesScalarModel) {
  for (double alpha : {1.0, 1.35}) {
    PowerModelParams params;
    params.alpha = alpha;
    const ServerPowerModel model(params);
    Rng rng(kSeed);
    for (size_t n : {size_t{1}, size_t{3}, size_t{7}, size_t{42}}) {
      std::vector<double> util(n);
      for (double& u : util) {
        u = rng.Uniform(0.0, 1.0);
      }
      for (double freq : {1.0, 0.8, 0.55}) {
        std::vector<double> power(n), dynamic_full(n);
        model.PowerSpanUniformFreq(util.data(), freq, power.data(),
                                   dynamic_full.data(), n);
        for (size_t i = 0; i < n; ++i) {
          EXPECT_EQ(power[i], model.PowerAt(util[i], freq))
              << "alpha=" << alpha << " freq=" << freq << " i=" << i;
          EXPECT_EQ(dynamic_full[i], model.DynamicPowerAt(util[i], 1.0))
              << "alpha=" << alpha << " freq=" << freq << " i=" << i;
        }
      }
    }
  }
}

TEST(BatchedKernelIdentityTest, RowCapBatchedAndScalarPathsAgree) {
  // Two identical fleets under the same tight row-1 budget. The reference
  // fleet holds one SLEEPING server in row 0, which routes every
  // ApplyRowFrequency through the exact per-server fallback; the batched
  // fleet is fully awake and takes the span path. Row 1 never contains the
  // sleeper, so its capping inputs are identical in both fleets — the
  // per-server outcomes must match bit-for-bit, and the aggregates may
  // differ only by summation association (bounded far below 1e-9).
  auto build = [](Simulation* sim) {
    TopologyConfig topology;
    topology.num_rows = 2;
    topology.racks_per_row = 3;
    topology.servers_per_rack = 7;  // Odd rack span for the blocked tail.
    topology.capping_enabled = true;
    auto dc = std::make_unique<DataCenter>(topology, sim);
    Rng rng(kSeed);
    for (int32_t s = 0; s < dc->num_servers(); ++s) {
      if (rng.Bernoulli(0.85)) {
        dc->PlaceTask(ServerId(s),
                      TaskSpec{JobId(s), Resources{rng.Uniform(4.0, 14.0),
                                                   rng.Uniform(1.0, 48.0)},
                               SimTime::Hours(100)});
      }
    }
    return dc;
  };
  Simulation sim_batched, sim_scalar;
  auto batched = build(&sim_batched);
  auto scalar = build(&sim_scalar);
  // Idle server 0 sleeps in the scalar fleet (it must hold no tasks; the
  // seeded placement above leaves it busy, so complete it by brute force:
  // pick the first task-free server in row 0).
  ServerId sleeper;
  for (ServerId id : scalar->servers_in_row(RowId(0))) {
    if (scalar->server(id).num_tasks() == 0) {
      sleeper = id;
      break;
    }
  }
  ASSERT_TRUE(sleeper.valid()) << "seed left no idle server in row 0";
  scalar->SleepServer(sleeper);

  // Throttle row 1 hard, then release it — both transitions exercise the
  // bulk path (enforce and release).
  const RowId row(1);
  const double budget = 0.70 * scalar->row_budget_watts(row);
  batched->SetRowCappingBudget(row, budget);
  scalar->SetRowCappingBudget(row, budget);
  EXPECT_LT(batched->row_throttle(row), 1.0) << "budget did not bind";
  EXPECT_EQ(batched->row_throttle(row), scalar->row_throttle(row));
  EXPECT_EQ(batched->FractionOfServersCapped(row),
            scalar->FractionOfServersCapped(row));
  auto expect_row_matches = [&](const char* when) {
    const DataCenter::IndexRange range = batched->server_range_of_row(row);
    std::span<const double> batched_power = batched->server_power_soa();
    std::span<const double> scalar_power = scalar->server_power_soa();
    for (size_t i = range.begin; i < range.end; ++i) {
      const ServerId id(static_cast<int32_t>(i));
      EXPECT_EQ(batched->server(id).frequency(),
                scalar->server(id).frequency())
          << when << ": server " << i;
      EXPECT_EQ(batched_power[i], scalar_power[i]) << when << ": server "
                                                   << i;
    }
    EXPECT_NEAR(batched->row_power_watts(row),
                scalar->row_power_watts(row), 1e-9)
        << when;
    EXPECT_NEAR(batched->row_power_watts(row),
                batched->ExactRowPowerWatts(row), 1e-9)
        << when;
  };
  expect_row_matches("capped");
  batched->SetCappingEnabled(false);
  scalar->SetCappingEnabled(false);
  expect_row_matches("released");
  // After an exact resummation both fleets' aggregates snap to the same
  // sequential-order sums over row 1 — bit-identical again.
  batched->ResummatePowerAggregates();
  scalar->ResummatePowerAggregates();
  EXPECT_EQ(batched->row_power_watts(row), scalar->row_power_watts(row));
}

// --- 3. DataCenter parallel resummation identity -------------------------

TEST(ParallelResummateTest, AggregatesAreBitIdenticalAtAnyJobCount) {
  auto build = [] {
    TopologyConfig topology;
    topology.num_rows = 3;
    topology.racks_per_row = 4;
    topology.servers_per_rack = 6;
    return topology;
  };
  // Reference: serial resummation (no pool attached).
  Simulation sim;
  DataCenter dc(build(), &sim);
  Rng rng(kSeed);
  for (int32_t s = 0; s < dc.num_servers(); ++s) {
    if (rng.Bernoulli(0.8)) {
      dc.PlaceTask(ServerId(s),
                   TaskSpec{JobId(s), Resources{rng.Uniform(1.0, 12.0),
                                                rng.Uniform(1.0, 48.0)},
                            SimTime::Hours(100)});
    }
  }
  dc.ResummatePowerAggregates();
  std::vector<double> rack_ref, row_ref;
  for (int r = 0; r < dc.num_racks(); ++r) {
    rack_ref.push_back(dc.rack_power_watts(RackId(r)));
  }
  for (int r = 0; r < dc.num_rows(); ++r) {
    row_ref.push_back(dc.row_power_watts(RowId(r)));
    EXPECT_EQ(dc.row_power_watts(RowId(r)), dc.ExactRowPowerWatts(RowId(r)));
  }
  const double total_ref = dc.total_power_watts();

  for (int jobs : {2, 8}) {
    ThreadPool pool(jobs - 1);
    dc.SetThreadPool(&pool);
    for (int repeat = 0; repeat < 4; ++repeat) {
      dc.ResummatePowerAggregates();
      for (int r = 0; r < dc.num_racks(); ++r) {
        EXPECT_EQ(dc.rack_power_watts(RackId(r)),
                  rack_ref[static_cast<size_t>(r)])
            << "rack " << r << " at jobs=" << jobs;
      }
      for (int r = 0; r < dc.num_rows(); ++r) {
        EXPECT_EQ(dc.row_power_watts(RowId(r)),
                  row_ref[static_cast<size_t>(r)])
            << "row " << r << " at jobs=" << jobs;
      }
      EXPECT_EQ(dc.total_power_watts(), total_ref) << "at jobs=" << jobs;
    }
    dc.SetThreadPool(nullptr);
  }
}

TEST(ParallelResummateTest, OddRackSpansStayExactAtAnyJobCount) {
  // Rack spans of 1/3/7 exercise every tail length of the span kernels
  // (and the degenerate one-server rack). The resummed aggregates must
  // equal the Exact* sums bit-for-bit, serial or sharded.
  for (int servers_per_rack : {1, 3, 7}) {
    TopologyConfig topology;
    topology.num_rows = 2;
    topology.racks_per_row = 3;
    topology.servers_per_rack = servers_per_rack;
    Simulation sim;
    DataCenter dc(topology, &sim);
    Rng rng(kSeed);
    for (int32_t s = 0; s < dc.num_servers(); ++s) {
      if (rng.Bernoulli(0.7)) {
        dc.PlaceTask(ServerId(s),
                     TaskSpec{JobId(s), Resources{rng.Uniform(1.0, 12.0),
                                                  rng.Uniform(1.0, 48.0)},
                              SimTime::Hours(100)});
      }
    }
    ThreadPool pool(3);
    for (bool sharded : {false, true}) {
      dc.SetThreadPool(sharded ? &pool : nullptr);
      dc.ResummatePowerAggregates();
      for (int r = 0; r < dc.num_racks(); ++r) {
        EXPECT_EQ(dc.rack_power_watts(RackId(r)),
                  dc.ExactRackPowerWatts(RackId(r)))
            << "rack " << r << " span=" << servers_per_rack
            << " sharded=" << sharded;
      }
      for (int r = 0; r < dc.num_rows(); ++r) {
        EXPECT_EQ(dc.row_power_watts(RowId(r)),
                  dc.ExactRowPowerWatts(RowId(r)))
            << "row " << r << " span=" << servers_per_rack
            << " sharded=" << sharded;
      }
      EXPECT_EQ(dc.total_power_watts(), dc.ExactTotalPowerWatts())
          << "span=" << servers_per_rack << " sharded=" << sharded;
    }
  }
}

// --- 4. The jobs matrix: full closed loop --------------------------------

ExperimentConfig MatrixConfig(int jobs) {
  ExperimentConfig config;
  config.seed = kSeed;
  config.jobs = jobs;
  config.topology.num_rows = 2;
  config.topology.racks_per_row = 3;
  config.topology.servers_per_rack = 8;  // 48 servers.
  config.monitor.record_servers = true;  // Per-server series in the db too.
  config.workload.arrivals.base_rate_per_min = ArrivalRateForNormalizedPower(
      config.topology, config.workload, 0.97, 0.25);
  config.controller.effect = FreezeEffectModel(0.05);
  config.controller.et = EtEstimator::Constant(0.02);
  config.warmup = SimTime::Minutes(30);
  config.duration = SimTime::Hours(2);
  return config;
}

struct MatrixArtifacts {
  std::string journal_csv;
  std::string db_csv;
};

MatrixArtifacts RunMatrixExperiment(int jobs) {
  ControlledExperiment experiment(MatrixConfig(jobs));
  experiment.Run();
  MatrixArtifacts artifacts;
  if (experiment.controller() == nullptr) {
    ADD_FAILURE() << "matrix config must enable the controller";
    return artifacts;
  }
  artifacts.journal_csv = experiment.controller()->journal().ToCsv();
  const std::vector<std::string> names = experiment.db().SeriesNames();
  std::ostringstream out;
  ExportCsv(experiment.db(), names, out);
  artifacts.db_csv = out.str();
  return artifacts;
}

// Helper because ASSERT_* needs a void-returning context.
void RunMatrixExperimentInto(int jobs, MatrixArtifacts* artifacts) {
  *artifacts = RunMatrixExperiment(jobs);
}

TEST(JobsMatrixTest, JournalAndDbBytesIdenticalAtJobs128) {
  MatrixArtifacts reference;
  RunMatrixExperimentInto(1, &reference);
  ASSERT_FALSE(reference.journal_csv.empty());
  ASSERT_FALSE(reference.db_csv.empty());
  // Not vacuous: a 2h measured run ticks the controller >= 100 times, and
  // each tick journals at least one row.
  ASSERT_GE(std::count(reference.journal_csv.begin(),
                       reference.journal_csv.end(), '\n'),
            100);
  // Per-server series must actually be in the serialized db, or the test
  // would pass vacuously on aggregate-only contents.
  ASSERT_NE(reference.db_csv.find("server/"), std::string::npos);
  for (int jobs : {2, 8}) {
    MatrixArtifacts parallel;
    RunMatrixExperimentInto(jobs, &parallel);
    EXPECT_EQ(parallel.journal_csv, reference.journal_csv)
        << "DecisionJournal CSV diverged at jobs=" << jobs;
    EXPECT_EQ(parallel.db_csv, reference.db_csv)
        << "TimeSeriesDb contents diverged at jobs=" << jobs;
  }
}

TEST(JobsMatrixTest, GridResultTableBytesIdenticalAcrossInnerJobs) {
  struct Arm {
    const char* name;
    double target_power;
  };
  const std::vector<Arm> arms = {{"light", 0.90}, {"heavy", 0.99}};
  auto run_grid = [&arms](int inner_jobs) {
    harness::RunnerOptions options;
    options.jobs = 2;  // Scenario-level parallelism composes with inner pools.
    auto grid = harness::RunGridOver(
        arms,
        [](const Arm& arm, size_t i) {
          return harness::GridMeta{arm.name, kSeed + i};
        },
        [inner_jobs](const Arm& arm, harness::RunContext& context) {
          ExperimentConfig config = MatrixConfig(inner_jobs);
          config.monitor.record_servers = false;  // Keep the runs lean.
          config.workload.arrivals.base_rate_per_min =
              ArrivalRateForNormalizedPower(config.topology, config.workload,
                                            arm.target_power, 0.25);
          config.duration = SimTime::Hours(1);
          ExperimentResult result = RunExperimentToResult(config);
          context.Metric("u_mean", result.experiment.u_mean);
          context.Metric("P_mean", result.experiment.p_mean);
          context.Metric("P_max", result.experiment.p_max);
          context.Metric("violations", result.experiment.violations);
          context.Metric("gain_tpw", result.gain_tpw);
          context.Metric("jobs_completed",
                         static_cast<double>(result.jobs_completed));
          return result;
        },
        options);
    for (const harness::ResultRow& row : grid.table.rows()) {
      EXPECT_TRUE(row.ok) << row.scenario << ": " << row.error;
    }
    return grid.table.ToCsv();
  };
  const std::string reference = run_grid(1);
  ASSERT_FALSE(reference.empty());
  for (int jobs : {2, 8}) {
    EXPECT_EQ(run_grid(jobs), reference)
        << "ResultTable CSV diverged at inner jobs=" << jobs;
  }
}

// --- 5. Campus federation jobs matrix ------------------------------------
//
// The campus layer multiplies every parallel surface by the DC count: four
// monitors shard sample passes on one shared pool, the allocator re-plans
// from their outputs, and spillover moves jobs across schedulers. The same
// contract must hold: byte-identical artifacts at jobs in {1, 2, 8}.

ExperimentConfig CampusMatrixConfig(int jobs) {
  ExperimentConfig config = MatrixConfig(jobs);
  config.duration = SimTime::Hours(1);
  config.campus.enabled = true;
  config.campus.num_datacenters = 4;  // 4 x 48 = 192 servers.
  // Heterogeneous operating points so the headroom allocator actually moves
  // budget (a uniform campus would make the re-plans near-no-ops).
  // All above the ~0.81 idle floor (idle_fraction 0.65 at rO = 0.25).
  config.campus.dc_target_power = {0.99, 0.95, 0.90, 0.85};
  config.campus.enable_spillover = true;
  config.campus.spillover_queue_threshold = 4;
  config.campus.spillover_max_jobs_per_pass = 8;
  return config;
}

struct CampusArtifacts {
  std::string allocator_csv;
  std::string controllers_csv;  // Per-DC controller journals, DC order.
  std::string db_csv;
};

void RunCampusMatrixInto(int jobs, CampusArtifacts* artifacts) {
  CampusExperiment experiment(CampusMatrixConfig(jobs));
  experiment.Run();
  artifacts->allocator_csv = experiment.allocator().journal().ToCsv();
  artifacts->controllers_csv.clear();
  for (int d = 0; d < experiment.campus().num_datacenters(); ++d) {
    artifacts->controllers_csv +=
        experiment.controller(DataCenterId(d)).journal().ToCsv();
  }
  const std::vector<std::string> names = experiment.db().SeriesNames();
  std::ostringstream out;
  ExportCsv(experiment.db(), names, out);
  artifacts->db_csv = out.str();
}

TEST(CampusJobsMatrixTest, AllArtifactBytesIdenticalAtJobs128) {
  CampusArtifacts reference;
  RunCampusMatrixInto(1, &reference);
  // Not vacuous: the 1 h window re-plans 4 times x 4 DCs = 16 audit rows
  // past the header, and every DC's controller ticks every minute.
  ASSERT_GE(std::count(reference.allocator_csv.begin(),
                       reference.allocator_csv.end(), '\n'),
            17);
  ASSERT_GE(std::count(reference.controllers_csv.begin(),
                       reference.controllers_csv.end(), '\n'),
            4 * 60);
  // Per-server series under the last DC's prefix must be present, or the db
  // comparison could pass on a partially built campus.
  ASSERT_NE(reference.db_csv.find("campus/dc3/server/"), std::string::npos);
  for (int jobs : {2, 8}) {
    CampusArtifacts parallel;
    RunCampusMatrixInto(jobs, &parallel);
    EXPECT_EQ(parallel.allocator_csv, reference.allocator_csv)
        << "allocator journal CSV diverged at jobs=" << jobs;
    EXPECT_EQ(parallel.controllers_csv, reference.controllers_csv)
        << "per-DC controller journals diverged at jobs=" << jobs;
    EXPECT_EQ(parallel.db_csv, reference.db_csv)
        << "TimeSeriesDb contents diverged at jobs=" << jobs;
  }
}

TEST(CampusJobsMatrixTest, GridResultTableBytesIdenticalAcrossInnerJobs) {
  struct Arm {
    const char* name;
    CampusAllocPolicy policy;
  };
  const std::vector<Arm> arms = {{"static", CampusAllocPolicy::kStatic},
                                 {"headroom", CampusAllocPolicy::kHeadroom}};
  auto run_grid = [&arms](int inner_jobs) {
    harness::RunnerOptions options;
    options.jobs = 2;
    auto grid = harness::RunGridOver(
        arms,
        [](const Arm& arm, size_t i) {
          return harness::GridMeta{arm.name, kSeed + i};
        },
        [inner_jobs](const Arm& arm, harness::RunContext& context) {
          ExperimentConfig config = CampusMatrixConfig(inner_jobs);
          config.monitor.record_servers = false;  // Keep the runs lean.
          config.campus.allocator.policy = arm.policy;
          CampusResult result = RunCampusToResult(config);
          context.Metric("gain_tpw", result.gain_tpw);
          context.Metric("throughput_ratio", result.throughput_ratio);
          context.Metric("replans", static_cast<double>(result.replans));
          context.Metric("spillover_jobs",
                         static_cast<double>(result.spillover_jobs));
          context.Metric("dc0_budget", result.dcs[0].final_budget_watts);
          return result;
        },
        options);
    for (const harness::ResultRow& row : grid.table.rows()) {
      EXPECT_TRUE(row.ok) << row.scenario << ": " << row.error;
    }
    return grid.table.ToCsv();
  };
  const std::string reference = run_grid(1);
  ASSERT_FALSE(reference.empty());
  for (int jobs : {2, 8}) {
    EXPECT_EQ(run_grid(jobs), reference)
        << "campus ResultTable CSV diverged at inner jobs=" << jobs;
  }
}

// --- 6. Record -> serialize -> parse -> replay round trip ----------------
//
// The trace subsystem's contract: a replayed trace is not merely
// statistically similar to the run it was recorded from — it reproduces the
// run byte-for-byte, at any job count. These tests record the section-4
// matrix run, push the trace through the full byte round trip
// (SerializeTrace -> ParseTrace), replay it, and require the controller
// DecisionJournal CSV and the entire serialized TimeSeriesDb to match the
// recording run exactly at jobs in {1, 2, 8}.

MatrixArtifacts RunMatrixWithConfig(const ExperimentConfig& config,
                                    std::shared_ptr<const TraceData>* trace) {
  ControlledExperiment experiment(config);
  experiment.Run();
  MatrixArtifacts artifacts;
  if (experiment.controller() == nullptr) {
    ADD_FAILURE() << "matrix config must enable the controller";
    return artifacts;
  }
  artifacts.journal_csv = experiment.controller()->journal().ToCsv();
  const std::vector<std::string> names = experiment.db().SeriesNames();
  std::ostringstream out;
  ExportCsv(experiment.db(), names, out);
  artifacts.db_csv = out.str();
  if (trace != nullptr) {
    *trace = experiment.RecordedTrace();
  }
  return artifacts;
}

// One byte round trip, shared by the tests below: serialize, reparse, and
// hand back the parsed copy (failing loudly if the bytes do not parse).
std::shared_ptr<const TraceData> ByteRoundTrip(const TraceData& trace) {
  const std::string bytes = SerializeTrace(trace);
  TraceParseResult parsed = ParseTrace(bytes);
  EXPECT_TRUE(parsed.ok()) << parsed.message;
  EXPECT_EQ(parsed.trace.jobs.size(), trace.jobs.size());
  return std::make_shared<const TraceData>(std::move(parsed.trace));
}

TEST(TraceRoundTripTest, RecordingIsAPassThroughDecorator) {
  // Interposing the recorder must not shift a single byte of the run.
  MatrixArtifacts plain;
  RunMatrixExperimentInto(1, &plain);
  ExperimentConfig config = MatrixConfig(1);
  config.trace.record = true;
  std::shared_ptr<const TraceData> trace;
  MatrixArtifacts recording = RunMatrixWithConfig(config, &trace);
  EXPECT_EQ(recording.journal_csv, plain.journal_csv);
  EXPECT_EQ(recording.db_csv, plain.db_csv);
  ASSERT_NE(trace, nullptr);
  EXPECT_GT(trace->jobs.size(), 1000u) << "2.5 h at ~25 jobs/min";
  EXPECT_EQ(trace->seed, config.seed);
}

TEST(TraceRoundTripTest, ReplayReproducesJournalAndDbBytesAtJobs128) {
  ExperimentConfig record_config = MatrixConfig(1);
  record_config.trace.record = true;
  std::shared_ptr<const TraceData> trace;
  const MatrixArtifacts reference = RunMatrixWithConfig(record_config, &trace);
  ASSERT_FALSE(reference.journal_csv.empty());
  ASSERT_NE(reference.db_csv.find("server/"), std::string::npos);
  ASSERT_NE(trace, nullptr);

  std::shared_ptr<const TraceData> reparsed = ByteRoundTrip(*trace);
  for (int jobs : {1, 2, 8}) {
    ExperimentConfig replay_config = MatrixConfig(jobs);
    replay_config.trace.replay_data = reparsed;
    MatrixArtifacts replayed = RunMatrixWithConfig(replay_config, nullptr);
    EXPECT_EQ(replayed.journal_csv, reference.journal_csv)
        << "replayed DecisionJournal CSV diverged at jobs=" << jobs;
    EXPECT_EQ(replayed.db_csv, reference.db_csv)
        << "replayed TimeSeriesDb contents diverged at jobs=" << jobs;
  }
}

TEST(TraceRoundTripTest, ReplayWhileRecordingReproducesTheTrace) {
  // Record a replay of a recording: the second-generation trace must equal
  // the first (replay feeds the recorder the same submissions at the same
  // instants).
  ExperimentConfig record_config = MatrixConfig(1);
  record_config.trace.record = true;
  std::shared_ptr<const TraceData> first;
  RunMatrixWithConfig(record_config, &first);
  ASSERT_NE(first, nullptr);

  ExperimentConfig rerecord_config = MatrixConfig(1);
  rerecord_config.trace.replay_data = ByteRoundTrip(*first);
  rerecord_config.trace.record = true;
  std::shared_ptr<const TraceData> second;
  RunMatrixWithConfig(rerecord_config, &second);
  ASSERT_NE(second, nullptr);

  ASSERT_EQ(second->jobs.size(), first->jobs.size());
  for (size_t i = 0; i < first->jobs.size(); ++i) {
    EXPECT_EQ(second->jobs[i].submit_us, first->jobs[i].submit_us);
    EXPECT_EQ(second->jobs[i].duration_us, first->jobs[i].duration_us);
    EXPECT_EQ(second->jobs[i].cpu_cores, first->jobs[i].cpu_cores);
    EXPECT_EQ(second->jobs[i].memory_gb, first->jobs[i].memory_gb);
    EXPECT_EQ(second->jobs[i].class_id, first->jobs[i].class_id);
  }
  // And byte-equal after serialization, which also covers the header.
  EXPECT_EQ(SerializeTrace(*second), SerializeTrace(*first));
}

// --- 7. The jobs matrix under spill --------------------------------------
//
// The cold tier is write-path-only during the closed loop (the controller
// and metrics read the monitor's caches, never the db), so enabling spill
// must not move a single byte of any artifact: the DecisionJournal and the
// stitched TimeSeriesDb CSV (ExportCsv reads hot + cold) must equal the
// RAM-only reference at jobs in {1, 2, 8}. And the restart contract: a
// store reopened via OpenExisting in a fresh process serves the identical
// cold bytes the sealing run produced.

// Canonical per-point rendering of a stitched series, capped at `limit`
// points — the byte form both halves of the restart comparison share.
std::string CanonicalStitched(const TimeSeriesDb& db, const std::string& name,
                              size_t limit) {
  std::string out;
  size_t emitted = 0;
  db.SeriesStitched(name).ForEachPoint([&](const TimePoint& point) {
    if (emitted++ >= limit) {
      return;
    }
    char line[64];
    std::snprintf(line, sizeof(line), "%lld %.17g\n",
                  static_cast<long long>(point.time.micros()), point.value);
    out += line;
  });
  return out;
}

TEST(SpillJobsMatrixTest, SpillArtifactsByteIdenticalToRamOnlyAtJobs128) {
  const std::string dir =
      ::testing::TempDir() + "ampere_spill_matrix";
  std::filesystem::remove_all(dir);
  MatrixArtifacts reference;
  RunMatrixExperimentInto(1, &reference);
  ASSERT_NE(reference.db_csv.find("server/"), std::string::npos);
  for (int jobs : {1, 2, 8}) {
    ExperimentConfig config = MatrixConfig(jobs);
    config.storage.store_dir = dir + "/jobs" + std::to_string(jobs);
    config.storage.hot_budget_samples = 48;  // Force heavy spilling.
    ControlledExperiment experiment(config);
    experiment.Run();
    ASSERT_NE(experiment.cold_store(), nullptr);
    EXPECT_GT(experiment.db().samples_spilled(), 0u)
        << "budget 48 over a 2.5 h run must spill, or this test is vacuous";
    EXPECT_EQ(experiment.controller()->journal().ToCsv(),
              reference.journal_csv)
        << "DecisionJournal CSV diverged under spill at jobs=" << jobs;
    std::ostringstream out;
    ExportCsv(experiment.db(), experiment.db().SeriesNames(), out);
    EXPECT_EQ(out.str(), reference.db_csv)
        << "stitched TimeSeriesDb CSV diverged under spill at jobs=" << jobs;
  }
}

TEST(SpillJobsMatrixTest, OpenExistingReproducesColdBytesAfterRestart) {
  const std::string dir =
      ::testing::TempDir() + "ampere_spill_restart";
  std::filesystem::remove_all(dir);
  constexpr size_t kHotBudget = 48;
  std::map<std::string, std::string> want;  // series -> cold-prefix bytes.
  {
    ExperimentConfig config = MatrixConfig(1);
    config.storage.store_dir = dir;
    config.storage.hot_budget_samples = kHotBudget;
    ControlledExperiment experiment(config);
    experiment.Run();  // Flushes the store on the way out.
    ASSERT_NE(experiment.cold_store(), nullptr);
    const ColdStore& store = *experiment.cold_store();
    for (const std::string& name : store.SeriesNames()) {
      want[name] = CanonicalStitched(experiment.db(), name,
                                     store.SamplesForSeries(name));
    }
    ASSERT_GT(want.size(), 48u) << "per-server series must have spilled";
  }  // Experiment (and its store) destroyed: the restart boundary.

  auto reopened = ColdStore::OpenExisting(ColdStoreConfig{dir});
  ASSERT_TRUE(reopened.status.ok()) << reopened.status.message;
  TimeSeriesDb restarted;
  restarted.AttachColdStore(reopened.store.get(), kHotBudget);
  ASSERT_EQ(restarted.SeriesNames().size(), want.size());
  for (const auto& [name, bytes] : want) {
    EXPECT_EQ(CanonicalStitched(restarted, name, SIZE_MAX), bytes)
        << "cold bytes changed across restart for " << name;
  }
}

TEST(TraceRoundTripTest, GridResultTableBytesIdenticalForReplayArm) {
  // The harness-level artifact: a one-arm grid run from the replayed trace
  // must emit the same ResultTable CSV at any inner job count, and the same
  // metric values as the synthetic source run.
  ExperimentConfig record_config = MatrixConfig(1);
  record_config.trace.record = true;
  std::shared_ptr<const TraceData> trace;
  RunMatrixWithConfig(record_config, &trace);
  ASSERT_NE(trace, nullptr);
  std::shared_ptr<const TraceData> reparsed = ByteRoundTrip(*trace);

  auto run_grid = [&reparsed](int inner_jobs) {
    const std::vector<int> arms = {0};
    harness::RunnerOptions options;
    options.jobs = 1;
    auto grid = harness::RunGridOver(
        arms,
        [](int, size_t) { return harness::GridMeta{"replay", kSeed}; },
        [&reparsed, inner_jobs](int, harness::RunContext& context) {
          ExperimentConfig config = MatrixConfig(inner_jobs);
          config.trace.replay_data = reparsed;
          ExperimentResult result = RunExperimentToResult(config);
          context.Metric("u_mean", result.experiment.u_mean);
          context.Metric("P_max", result.experiment.p_max);
          context.Metric("violations", result.experiment.violations);
          context.Metric("jobs_completed",
                         static_cast<double>(result.jobs_completed));
          context.Metric("replayed",
                         static_cast<double>(result.trace_jobs_replayed));
          return result;
        },
        options);
    for (const harness::ResultRow& row : grid.table.rows()) {
      EXPECT_TRUE(row.ok) << row.scenario << ": " << row.error;
    }
    return grid.table.ToCsv();
  };
  const std::string reference = run_grid(1);
  ASSERT_FALSE(reference.empty());
  for (int jobs : {2, 8}) {
    EXPECT_EQ(run_grid(jobs), reference)
        << "replay-arm ResultTable CSV diverged at inner jobs=" << jobs;
  }
}

}  // namespace
}  // namespace ampere
