// Tests for mixed-generation fleets: per-rack power models, correct budget
// and idle accounting, and capping against heterogeneous hardware.

#include <gtest/gtest.h>

#include "src/cluster/datacenter.h"
#include "src/common/check.h"
#include "src/sched/scheduler.h"

namespace ampere {
namespace {

// Two generations: an old 300 W / 70 %-idle box and a new 200 W / 55 %-idle
// one; racks alternate.
TopologyConfig MixedTopology() {
  TopologyConfig config;
  config.num_rows = 1;
  config.racks_per_row = 4;
  config.servers_per_rack = 4;
  config.server_capacity = Resources{16.0, 64.0};
  PowerModelParams old_gen;
  old_gen.rated_watts = 300.0;
  old_gen.idle_fraction = 0.70;
  PowerModelParams new_gen;
  new_gen.rated_watts = 200.0;
  new_gen.idle_fraction = 0.55;
  config.server_generations = {old_gen, new_gen};
  return config;
}

TEST(HeterogeneousTest, RacksCycleThroughGenerations) {
  Simulation sim;
  DataCenter dc(MixedTopology(), &sim);
  // Racks 0 and 2 are old (300 W rated), racks 1 and 3 new (200 W).
  EXPECT_DOUBLE_EQ(dc.server(ServerId(0)).rated_watts(), 300.0);
  EXPECT_DOUBLE_EQ(dc.server(ServerId(4)).rated_watts(), 200.0);
  EXPECT_DOUBLE_EQ(dc.server(ServerId(8)).rated_watts(), 300.0);
  EXPECT_DOUBLE_EQ(dc.server(ServerId(12)).rated_watts(), 200.0);
  EXPECT_EQ(dc.num_generations(), 2u);
}

TEST(HeterogeneousTest, BudgetsSumPerGeneration) {
  Simulation sim;
  DataCenter dc(MixedTopology(), &sim);
  // Rated row budget: 8 * 300 + 8 * 200.
  EXPECT_DOUBLE_EQ(dc.row_budget_watts(RowId(0)), 8 * 300.0 + 8 * 200.0);
  EXPECT_DOUBLE_EQ(dc.rack_budget_watts(RackId(0)), 4 * 300.0);
  EXPECT_DOUBLE_EQ(dc.rack_budget_watts(RackId(1)), 4 * 200.0);
}

TEST(HeterogeneousTest, IdleAccountingPerGeneration) {
  Simulation sim;
  DataCenter dc(MixedTopology(), &sim);
  double expected_idle = 8 * 300.0 * 0.70 + 8 * 200.0 * 0.55;
  EXPECT_NEAR(dc.total_power_watts(), expected_idle, 1e-9);
  EXPECT_NEAR(dc.server_power_watts(ServerId(0)), 210.0, 1e-9);
  EXPECT_NEAR(dc.server_power_watts(ServerId(4)), 110.0, 1e-9);
}

TEST(HeterogeneousTest, AggregatesConsistentUnderMixedLoad) {
  Simulation sim;
  DataCenter dc(MixedTopology(), &sim);
  for (int32_t s = 0; s < dc.num_servers(); s += 3) {
    ASSERT_TRUE(dc.PlaceTask(ServerId(s),
                             TaskSpec{JobId(s), Resources{8.0, 8.0},
                                      SimTime::Minutes(20)}));
  }
  sim.RunUntil(SimTime::Minutes(5));
  double sum = 0.0;
  for (int32_t s = 0; s < dc.num_servers(); ++s) {
    sum += dc.server_power_watts(ServerId(s));
  }
  EXPECT_NEAR(dc.row_power_watts(RowId(0)), sum, 1e-6);
}

TEST(HeterogeneousTest, PerServerCappingUsesOwnIdleFloor) {
  Simulation sim;
  TopologyConfig config = MixedTopology();
  config.capping_enabled = true;
  config.capping_mode = CappingMode::kPerServer;
  // Per-server share: budget/16 = 250 W. Old gen idles at 210 W with 90 W
  // dynamic range: busy old boxes exceed 250 and get throttled. New gen
  // peaks at 200 W < 250: can never violate its share.
  DataCenter dc(config, &sim);
  ASSERT_TRUE(dc.PlaceTask(ServerId(0),  // Old generation, full blast.
                           TaskSpec{JobId(1), Resources{16.0, 16.0},
                                    SimTime::Hours(1)}));
  ASSERT_TRUE(dc.PlaceTask(ServerId(4),  // New generation, full blast.
                           TaskSpec{JobId(2), Resources{16.0, 16.0},
                                    SimTime::Hours(1)}));
  EXPECT_TRUE(dc.IsServerCapped(ServerId(0)));
  EXPECT_FALSE(dc.IsServerCapped(ServerId(4)));
}

TEST(HeterogeneousTest, SleepFloorMustClearEveryGeneration) {
  Simulation sim;
  TopologyConfig config = MixedTopology();
  // 40 % of the primary 250 W default = 100 W, below old-gen idle (210) but
  // NOT below new-gen idle (110)? 100 < 110, fine; push it over:
  config.sleep_fraction = 0.50;  // 125 W > new-gen idle 110 W.
  EXPECT_THROW(DataCenter(config, &sim), CheckFailure);
}

TEST(HeterogeneousTest, SchedulerAndPowerRankingWorkAcrossGenerations) {
  Simulation sim;
  DataCenter dc(MixedTopology(), &sim);
  Scheduler scheduler(&dc, SchedulerConfig{}, Rng(5));
  for (int i = 0; i < 32; ++i) {
    JobSpec job;
    job.id = JobId(i);
    job.demand = Resources{2.0, 4.0};
    job.duration = SimTime::Hours(10);
    scheduler.Submit(job);
  }
  EXPECT_EQ(scheduler.jobs_placed(), 32u);
  // Both generations host work.
  EXPECT_GT(dc.server(ServerId(0)).num_tasks() +
                dc.server(ServerId(1)).num_tasks() +
                dc.server(ServerId(2)).num_tasks() +
                dc.server(ServerId(3)).num_tasks(),
            0u);
  EXPECT_GT(dc.server(ServerId(4)).num_tasks() +
                dc.server(ServerId(5)).num_tasks() +
                dc.server(ServerId(6)).num_tasks() +
                dc.server(ServerId(7)).num_tasks(),
            0u);
}

}  // namespace
}  // namespace ampere
