#include "src/control/pcp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/control/spcp.h"

namespace ampere {
namespace {

PcpProblem LinearProblem(double p0, std::vector<double> e, double kr) {
  PcpProblem problem;
  problem.p0 = p0;
  problem.e = std::move(e);
  problem.pm = 1.0;
  problem.f = [kr](double u) { return kr * u; };
  return problem;
}

TEST(PcpGreedyTest, NoControlWhenNeverOverBudget) {
  auto sol = SolvePcpGreedy(LinearProblem(0.9, {0.01, 0.02, -0.01}, 0.05));
  EXPECT_TRUE(sol.feasible);
  EXPECT_DOUBLE_EQ(sol.cost, 0.0);
  for (double u : sol.u) {
    EXPECT_DOUBLE_EQ(u, 0.0);
  }
}

TEST(PcpGreedyTest, TrajectoryStaysWithinBudget) {
  auto sol = SolvePcpGreedy(LinearProblem(0.98, {0.03, 0.03, 0.03}, 0.05));
  ASSERT_TRUE(sol.feasible);
  for (double p : sol.trajectory) {
    EXPECT_LE(p, 1.0 + 1e-9);
  }
}

TEST(PcpGreedyTest, MatchesIteratedSpcpForLinearEffect) {
  double kr = 0.06;
  std::vector<double> e{0.02, 0.05, 0.01, 0.04};
  auto sol = SolvePcpGreedy(LinearProblem(0.97, e, kr));
  ASSERT_TRUE(sol.feasible);
  double p = 0.97;
  for (size_t k = 0; k < e.size(); ++k) {
    double expected_u = SolveSpcp(p, e[k], 1.0, kr);
    EXPECT_NEAR(sol.u[k], expected_u, 1e-9) << "step " << k;
    p = p + e[k] - kr * expected_u;
  }
}

TEST(PcpGreedyTest, InfeasibleInstanceFlagged) {
  // E far above f(1): even u = 1 cannot hold the budget.
  auto sol = SolvePcpGreedy(LinearProblem(1.0, {0.2}, 0.05));
  EXPECT_FALSE(sol.feasible);
  EXPECT_DOUBLE_EQ(sol.u[0], 1.0);  // Best effort.
}

TEST(PcpGreedyTest, NonlinearEffectBisectionFindsMinimal) {
  PcpProblem problem;
  problem.p0 = 1.0;
  problem.e = {0.04};
  problem.pm = 1.0;
  problem.f = [](double u) { return 0.08 * std::sqrt(u); };  // Concave.
  auto sol = SolvePcpGreedy(problem);
  ASSERT_TRUE(sol.feasible);
  // Need 0.08*sqrt(u) >= 0.04 -> u >= 0.25.
  EXPECT_NEAR(sol.u[0], 0.25, 1e-9);
}

TEST(PcpBruteForceTest, FindsZeroCostWhenSafe) {
  auto sol =
      SolvePcpBruteForce(LinearProblem(0.5, {0.1, 0.1}, 0.05), 10);
  ASSERT_TRUE(sol.feasible);
  EXPECT_DOUBLE_EQ(sol.cost, 0.0);
}

TEST(PcpBruteForceTest, RejectsInfeasible) {
  auto sol = SolvePcpBruteForce(LinearProblem(1.0, {0.5}, 0.05), 10);
  EXPECT_FALSE(sol.feasible);
}

TEST(PcpBruteForceTest, LargeHorizonThrows) {
  auto problem = LinearProblem(0.5, std::vector<double>(10, 0.0), 0.05);
  EXPECT_THROW(SolvePcpBruteForce(problem, 4), CheckFailure);
}

// --- Lemma 3.1: iterated SPCP (== greedy with linear f) is optimal for the
// full-horizon PCP. Validated against exhaustive search on randomized
// instances whose E_k <= kr (the paper's empirical feasibility condition).
class Lemma31Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Lemma31Test, GreedyCostMatchesBruteForceOptimum) {
  Rng rng(GetParam());
  const int steps = 40;  // u grid granularity for the exhaustive search.
  for (int trial = 0; trial < 20; ++trial) {
    double kr = rng.Uniform(0.04, 0.12);
    double p0 = rng.Uniform(0.9, 1.0);
    size_t n = static_cast<size_t>(rng.UniformInt(1, 3));
    std::vector<double> e;
    for (size_t k = 0; k < n; ++k) {
      e.push_back(rng.Uniform(0.0, kr));  // Feasibility condition.
    }
    auto problem = LinearProblem(p0, e, kr);
    auto greedy = SolvePcpGreedy(problem);
    ASSERT_TRUE(greedy.feasible);

    // The brute-force grid cannot express arbitrary reals, so compare
    // against it with grid-quantization slack: grid u's overshoot by at
    // most 1/steps per step, and its optimum cannot beat greedy by more
    // than the quantization error.
    auto brute = SolvePcpBruteForce(problem, steps, kr / steps + 1e-9);
    ASSERT_TRUE(brute.feasible);
    double slack = static_cast<double>(n) / steps;
    EXPECT_LE(greedy.cost, brute.cost + slack)
        << "greedy should be optimal up to grid quantization";
    EXPECT_GE(greedy.cost, brute.cost - slack)
        << "greedy must not be infeasibly cheap vs the exhaustive optimum";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, Lemma31Test,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace ampere
