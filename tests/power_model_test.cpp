#include "src/power/power_model.h"

#include <gtest/gtest.h>

#include "src/common/check.h"

namespace ampere {
namespace {

PowerModelParams DefaultParams() {
  PowerModelParams p;
  p.rated_watts = 250.0;
  p.idle_fraction = 0.65;
  p.alpha = 1.0;
  return p;
}

TEST(PowerModelTest, IdleAtZeroUtilization) {
  ServerPowerModel model(DefaultParams());
  EXPECT_DOUBLE_EQ(model.PowerAt(0.0, 1.0), 162.5);
  EXPECT_DOUBLE_EQ(model.idle_watts(), 162.5);
}

TEST(PowerModelTest, RatedAtFullUtilizationFullFrequency) {
  ServerPowerModel model(DefaultParams());
  EXPECT_DOUBLE_EQ(model.PowerAt(1.0, 1.0), 250.0);
}

TEST(PowerModelTest, LinearInUtilization) {
  ServerPowerModel model(DefaultParams());
  double p_half = model.PowerAt(0.5, 1.0);
  EXPECT_DOUBLE_EQ(p_half, 162.5 + 0.5 * 87.5);
}

TEST(PowerModelTest, ThrottlingScalesOnlyDynamicComponent) {
  ServerPowerModel model(DefaultParams());
  double full = model.PowerAt(0.8, 1.0);
  double capped = model.PowerAt(0.8, 0.5);
  EXPECT_DOUBLE_EQ(capped, 162.5 + 0.5 * (full - 162.5));
  // Idle draw is unaffected by frequency.
  EXPECT_DOUBLE_EQ(model.PowerAt(0.0, 0.5), 162.5);
}

TEST(PowerModelTest, UtilizationClampedToUnitRange) {
  ServerPowerModel model(DefaultParams());
  EXPECT_DOUBLE_EQ(model.PowerAt(1.5, 1.0), 250.0);
  EXPECT_DOUBLE_EQ(model.PowerAt(-0.5, 1.0), 162.5);
}

TEST(PowerModelTest, AlphaShapesCurve) {
  PowerModelParams p = DefaultParams();
  p.alpha = 2.0;
  ServerPowerModel model(p);
  EXPECT_DOUBLE_EQ(model.DynamicPowerAt(0.5, 1.0), 87.5 * 0.25);
}

TEST(PowerModelTest, MonotoneInUtilization) {
  ServerPowerModel model(DefaultParams());
  double prev = -1.0;
  for (double u = 0.0; u <= 1.0; u += 0.05) {
    double p = model.PowerAt(u, 1.0);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(PowerModelTest, InvalidParamsThrow) {
  PowerModelParams p = DefaultParams();
  p.rated_watts = 0.0;
  EXPECT_THROW(ServerPowerModel{p}, CheckFailure);
  p = DefaultParams();
  p.idle_fraction = 1.0;
  EXPECT_THROW(ServerPowerModel{p}, CheckFailure);
  p = DefaultParams();
  p.alpha = 0.0;
  EXPECT_THROW(ServerPowerModel{p}, CheckFailure);
}

}  // namespace
}  // namespace ampere
