#include "src/stats/histogram.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/stats/percentile.h"

namespace ampere {
namespace {

TEST(HistogramTest, CountAndMean) {
  Histogram h(0.0, 10.0, 10);
  h.Add(1.0);
  h.Add(2.0);
  h.Add(3.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_DOUBLE_EQ(h.max_seen(), 3.0);
}

TEST(HistogramTest, QuantileOfEmptyThrows) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_THROW(h.Quantile(0.5), CheckFailure);
}

TEST(HistogramTest, QuantileInterpolatesWithinBin) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) {
    h.Add(4.5);  // All mass in bin [4,5).
  }
  double q = h.Quantile(0.5);
  EXPECT_GE(q, 4.0);
  EXPECT_LE(q, 5.0);
}

TEST(HistogramTest, OverflowMassReportsMaxSeen) {
  Histogram h(0.0, 1.0, 4);
  h.Add(5.0);
  h.Add(9.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 9.0);
}

TEST(HistogramTest, UnderflowClampsToLo) {
  Histogram h(10.0, 20.0, 4);
  h.Add(1.0);
  h.Add(2.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.1), 10.0);
}

TEST(HistogramTest, QuantilesMatchExactWithinBinWidth) {
  Rng rng(11);
  Histogram h(0.0, 100.0, 10000);  // 0.01-wide bins.
  std::vector<double> exact;
  for (int i = 0; i < 100000; ++i) {
    double v = rng.Exponential(5.0);
    h.Add(v);
    exact.push_back(v);
  }
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(h.Quantile(q), Percentile(exact, q), 0.05)
        << "quantile " << q;
  }
}

TEST(HistogramTest, MergeCombinesMass) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  a.Add(1.0);
  b.Add(9.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.max_seen(), 9.0);
}

TEST(HistogramTest, MergeLayoutMismatchThrows) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 20.0, 10);
  EXPECT_THROW(a.Merge(b), CheckFailure);
}

}  // namespace
}  // namespace ampere
