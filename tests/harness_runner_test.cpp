// Tests for the parallel scenario runner (src/harness): the determinism
// contract (bit-identical ResultTable for any job count), submission-order
// assembly, failure isolation, the work-stealing pool's drain semantics,
// per-thread log capture, result emission formats, and the CLI plumbing.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/log.h"
#include "src/common/log_capture.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/harness/grid.h"
#include "src/harness/result_table.h"
#include "src/harness/runner.h"
#include "src/harness/scenario.h"

namespace ampere {
namespace harness {
namespace {

// Lowers the global log level so AMPERE_LOG(kInfo) lines are emitted, and
// restores the previous level on scope exit.
class ScopedInfoLogLevel {
 public:
  ScopedInfoLogLevel() : previous_(GetLogLevel()) {
    SetLogLevel(LogLevel::kInfo);
  }
  ~ScopedInfoLogLevel() { SetLogLevel(previous_); }

 private:
  LogLevel previous_;
};

// A deterministic scenario set: each body derives all output from its seed
// through the simulator's own RNG, so any job count must produce the same
// metric bits.
std::vector<Scenario> SeededGrid(size_t n) {
  std::vector<Scenario> scenarios;
  for (size_t i = 0; i < n; ++i) {
    uint64_t seed = 1000 + i;
    char name[32];
    std::snprintf(name, sizeof(name), "run-%zu", i);
    scenarios.push_back(Scenario{
        name, seed, [seed](RunContext& context) {
          Rng rng(seed);
          double sum = 0.0;
          for (int k = 0; k < 1000; ++k) {
            sum += rng.NextDouble();
          }
          context.Metric("sum", sum);
          context.Metric("next", rng.NextDouble());
          context.NoteLine("detail for seed " + std::to_string(seed));
        }});
  }
  return scenarios;
}

TEST(ScenarioRunnerTest, SameDataAcrossJobCounts) {
  auto scenarios = SeededGrid(12);
  RunnerOptions serial;
  serial.jobs = 1;
  RunnerOptions parallel;
  parallel.jobs = 4;
  ResultTable a = RunScenarios(scenarios, serial);
  ResultTable b = RunScenarios(scenarios, parallel);

  ASSERT_EQ(a.size(), 12u);
  ASSERT_EQ(b.size(), 12u);
  EXPECT_TRUE(ResultTable::SameData(a, b));
  // The deterministic CSV rendering must be byte-identical too.
  EXPECT_EQ(a.ToCsv(), b.ToCsv());
  // Bit-exact doubles, not just approximately equal.
  for (size_t i = 0; i < a.size(); ++i) {
    double va = a.row(i).Metric("sum");
    double vb = b.row(i).Metric("sum");
    EXPECT_EQ(0, std::memcmp(&va, &vb, sizeof(double))) << "row " << i;
  }
}

TEST(ScenarioRunnerTest, RowsAssembleInSubmissionOrder) {
  // Give early submissions the longest work so they finish last; rows must
  // still come back in submission order.
  std::vector<Scenario> scenarios;
  for (size_t i = 0; i < 8; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "ordered-%zu", i);
    scenarios.push_back(Scenario{
        name, 100 + i, [i](RunContext& context) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds((8 - i) * 3));
          context.Metric("i", static_cast<double>(i));
        }});
  }
  RunnerOptions options;
  options.jobs = 4;
  ResultTable table = RunScenarios(scenarios, options);
  ASSERT_EQ(table.size(), 8u);
  for (size_t i = 0; i < table.size(); ++i) {
    EXPECT_EQ(table.row(i).index, i);
    EXPECT_EQ(table.row(i).seed, 100 + i);
    EXPECT_EQ(table.row(i).Metric("i"), static_cast<double>(i));
  }
}

TEST(ScenarioRunnerTest, ThrowingScenarioFailsItsRowOnly) {
  std::vector<Scenario> scenarios = SeededGrid(4);
  scenarios.insert(scenarios.begin() + 2,
                   Scenario{"boom", 7, [](RunContext&) {
                              throw std::runtime_error("kaboom");
                            }});
  RunnerOptions options;
  options.jobs = 2;
  ResultTable table = RunScenarios(scenarios, options);
  ASSERT_EQ(table.size(), 5u);
  EXPECT_FALSE(table.row(2).ok);
  EXPECT_NE(table.row(2).error.find("kaboom"), std::string::npos);
  for (size_t i : {0u, 1u, 3u, 4u}) {
    EXPECT_TRUE(table.row(i).ok) << "row " << i;
  }
}

TEST(ScenarioRunnerTest, CapturesLogsPerRun) {
  ScopedInfoLogLevel log_level;
  std::vector<Scenario> scenarios;
  for (int i = 0; i < 4; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "logger-%d", i);
    scenarios.push_back(Scenario{
        name, static_cast<uint64_t>(i), [i](RunContext& context) {
          AMPERE_LOG(kInfo) << "hello from run " << i;
          context.Metric("i", i);
        }});
  }
  RunnerOptions options;
  options.jobs = 2;
  options.capture_logs = true;
  ResultTable table = RunScenarios(scenarios, options);
  for (int i = 0; i < 4; ++i) {
    const std::string& log = table.row(static_cast<size_t>(i)).log;
    EXPECT_NE(log.find("hello from run " + std::to_string(i)),
              std::string::npos)
        << "row " << i << " log: " << log;
    // No cross-talk: other runs' lines must not appear.
    for (int j = 0; j < 4; ++j) {
      if (j != i) {
        EXPECT_EQ(log.find("hello from run " + std::to_string(j)),
                  std::string::npos);
      }
    }
  }
}

TEST(ScenarioRunnerTest, BuiltinSmokeGridIsDeterministic) {
  RegisterBuiltinScenarios();
  ASSERT_TRUE(ScenarioRegistry::Global().Contains("fleet-smoke"));
  auto scenarios = ScenarioRegistry::Global().Make("fleet-smoke");
  RunnerOptions serial;
  serial.jobs = 1;
  RunnerOptions parallel;
  parallel.jobs = 4;
  ResultTable a = RunScenarios(scenarios, serial);
  // Scenario bodies are std::functions — rebuild the set so each table run
  // uses fresh closures (guards against accidental state in factories).
  auto scenarios2 = ScenarioRegistry::Global().Make("fleet-smoke");
  ResultTable b = RunScenarios(scenarios2, parallel);
  EXPECT_TRUE(ResultTable::SameData(a, b));
  EXPECT_EQ(a.ToCsv(), b.ToCsv());
  for (const ResultRow& row : a.rows()) {
    EXPECT_TRUE(row.ok) << row.scenario << ": " << row.error;
  }
}

TEST(GridTest, TypedResultsMatchSubmissionOrder) {
  std::vector<int> items{5, 3, 8, 1};
  auto grid = RunGridOver(
      items,
      [](int item, size_t i) {
        return GridMeta{"item-" + std::to_string(item), 50 + i};
      },
      [](int item, RunContext& context) {
        context.Metric("doubled", 2.0 * item);
        return item * 10;
      },
      RunnerOptions{.jobs = 2});
  ASSERT_EQ(grid.values.size(), 4u);
  EXPECT_EQ(grid.values[0], 50);
  EXPECT_EQ(grid.values[1], 30);
  EXPECT_EQ(grid.values[2], 80);
  EXPECT_EQ(grid.values[3], 10);
  EXPECT_EQ(grid.table.row(2).Metric("doubled"), 16.0);
  EXPECT_EQ(grid.table.row(2).seed, 52u);
}

TEST(ThreadPoolTest, DrainsQueuedWorkBeforeShutdown) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destructor must wait for every queued task, not just running ones.
  }
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, WaitBlocksUntilAllSubmittedWorkFinishes) {
  std::atomic<int> done{0};
  ThreadPool pool(3);
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 32);
  // The pool stays usable after Wait().
  pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  pool.Wait();
  EXPECT_EQ(done.load(), 33);
}

TEST(ThreadPoolTest, NestedSubmissionFromWorkers) {
  // Workers submitting follow-up work (as parallel grids with per-item
  // fan-out would) must not deadlock Wait().
  std::atomic<int> done{0};
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&pool, &done] {
      pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 16);
}

TEST(ScopedLogCaptureTest, CapturesAndRestores) {
  ScopedInfoLogLevel log_level;
  std::string inner_text;
  {
    ScopedLogCapture outer;
    AMPERE_LOG(kInfo) << "outer-line";
    {
      ScopedLogCapture inner;
      AMPERE_LOG(kInfo) << "inner-line";
      inner_text = inner.output();
    }
    AMPERE_LOG(kInfo) << "outer-again";
    EXPECT_NE(outer.output().find("outer-line"), std::string::npos);
    EXPECT_NE(outer.output().find("outer-again"), std::string::npos);
    EXPECT_EQ(outer.output().find("inner-line"), std::string::npos);
  }
  EXPECT_NE(inner_text.find("inner-line"), std::string::npos);
  EXPECT_EQ(inner_text.find("outer"), std::string::npos);
}

TEST(ResultTableTest, CsvOmitsTimingAndJsonCarriesIt) {
  ResultTable table;
  table.Resize(1);
  table.row(0).scenario = "alpha";
  table.row(0).seed = 42;
  table.row(0).wall_ms = 123.5;
  table.row(0).metrics.push_back(MetricValue{"m", 0.1});
  table.set_jobs(3);
  table.set_total_wall_ms(456.0);

  std::string csv = table.ToCsv();
  EXPECT_EQ(csv.find("wall"), std::string::npos);
  EXPECT_NE(csv.find("alpha"), std::string::npos);
  EXPECT_NE(csv.find("m"), std::string::npos);

  std::string json = table.ToJson();
  EXPECT_NE(json.find("\"wall_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs\": 3"), std::string::npos);
}

TEST(ResultTableTest, SameDataIgnoresTimingButNotMetrics) {
  ResultTable a;
  a.Resize(1);
  a.row(0).scenario = "s";
  a.row(0).metrics.push_back(MetricValue{"m", 1.0});
  a.row(0).wall_ms = 10.0;
  ResultTable b = a;
  b.row(0).wall_ms = 99.0;
  b.set_jobs(8);
  EXPECT_TRUE(ResultTable::SameData(a, b));
  b.row(0).metrics[0].value = 1.0000001;
  EXPECT_FALSE(ResultTable::SameData(a, b));
}

TEST(HarnessArgsTest, ParsesFlagsAndPositionals) {
  const char* argv_c[] = {"prog",      "--jobs=5", "pos1", "--csv",
                          "out.csv",   "--json=out.json", "--no-notes",
                          "pos2"};
  std::vector<char*> argv;
  for (const char* a : argv_c) {
    argv.push_back(const_cast<char*>(a));
  }
  HarnessArgs args =
      ParseHarnessArgs(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(args.runner.jobs, 5);
  EXPECT_EQ(args.csv_path, "out.csv");
  EXPECT_EQ(args.json_path, "out.json");
  EXPECT_FALSE(args.print_notes);
  ASSERT_EQ(args.positional.size(), 2u);
  EXPECT_EQ(args.positional[0], "pos1");
  EXPECT_EQ(args.positional[1], "pos2");
}

TEST(HarnessArgsTest, ParsesLogLevelAndObsFlags) {
  LogLevel previous = GetLogLevel();
  const char* argv_c[] = {"prog", "--log-level=debug", "--obs"};
  std::vector<char*> argv;
  for (const char* a : argv_c) {
    argv.push_back(const_cast<char*>(a));
  }
  HarnessArgs args =
      ParseHarnessArgs(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  EXPECT_TRUE(args.runner.capture_obs);
  EXPECT_TRUE(args.positional.empty());
  SetLogLevel(previous);
}

TEST(LogLevelTest, ParseAcceptsNamesAndAliases) {
  LogLevel level;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("WARN", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("e", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("off", &level));
  EXPECT_FALSE(ParseLogLevel("loud", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
}

TEST(LogLevelTest, EnvironmentVariableAppliesAndFlagWins) {
  LogLevel previous = GetLogLevel();
  ASSERT_EQ(setenv("AMPERE_LOG_LEVEL", "info", 1), 0);
  const char* argv_env[] = {"prog"};
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(argv_env[0]));
  ParseHarnessArgs(1, argv.data());
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);

  // A --log-level flag overrides the environment, like --jobs/AMPERE_JOBS.
  const char* argv_both[] = {"prog", "--log-level=error"};
  std::vector<char*> argv2;
  for (const char* a : argv_both) {
    argv2.push_back(const_cast<char*>(a));
  }
  ParseHarnessArgs(2, argv2.data());
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);

  unsetenv("AMPERE_LOG_LEVEL");
  SetLogLevel(previous);
}

TEST(ResolveJobsTest, PositiveWinsOverEnvironment) {
  EXPECT_EQ(ResolveJobs(7), 7);
  EXPECT_GE(ResolveJobs(0), 1);
  EXPECT_GE(ResolveJobs(-3), 1);
}

TEST(JsonEscapeTest, EscapesControlAndQuotes) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(ArtifactPathTest, SuffixesRunIndexOnlyUnderMultipleRuns) {
  // A single run keeps the user's path verbatim; a multi-run grid splices
  // _runN before the extension so parallel scenarios never clobber.
  EXPECT_EQ(ArtifactPathForRun("out/trace.json", 0, 1), "out/trace.json");
  EXPECT_EQ(ArtifactPathForRun("out/trace.json", 2, 4), "out/trace_run2.json");
  EXPECT_EQ(ArtifactPathForRun("trace", 1, 3), "trace_run1");
  // A dot inside a directory name is not an extension.
  EXPECT_EQ(ArtifactPathForRun("out.d/trace", 1, 3), "out.d/trace_run1");
}

TEST(ArtifactRowTest, ArtifactsReachJsonButNotCsvOrSameData) {
  Scenario scenarios[] = {
      {"with-artifact", 1,
       [](RunContext& context) { context.Artifact("/tmp/a.trace.json"); }},
      {"without", 2, [](RunContext&) {}},
  };
  RunnerOptions options;
  options.jobs = 1;
  ResultTable table = RunScenarios(scenarios, options);

  const std::string json = table.ToJson();
  EXPECT_NE(json.find("\"artifacts\": [\"/tmp/a.trace.json\"]"),
            std::string::npos);
  EXPECT_EQ(table.ToCsv().find("a.trace.json"), std::string::npos);

  // Artifact paths are run metadata (host-dependent), so SameData ignores
  // them like timing.
  ResultTable other = RunScenarios(scenarios, options);
  other.row(0).artifacts.clear();
  EXPECT_TRUE(ResultTable::SameData(table, other));
}

}  // namespace
}  // namespace harness
}  // namespace ampere
