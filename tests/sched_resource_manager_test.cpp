#include "src/sched/resource_manager.h"

#include <gtest/gtest.h>

namespace ampere {
namespace {

TopologyConfig SmallTopology() {
  TopologyConfig config;
  config.num_rows = 1;
  config.racks_per_row = 1;
  config.servers_per_rack = 4;
  config.server_capacity = Resources{16.0, 64.0};
  return config;
}

TEST(ResourceManagerTest, FreezeRemovesFromCandidateList) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  ResourceManager rm(&dc);
  EXPECT_TRUE(rm.IsCandidate(ServerId(0)));
  rm.Freeze(ServerId(0));
  EXPECT_FALSE(rm.IsCandidate(ServerId(0)));
  EXPECT_TRUE(rm.IsFrozen(ServerId(0)));
  rm.Unfreeze(ServerId(0));
  EXPECT_TRUE(rm.IsCandidate(ServerId(0)));
  EXPECT_EQ(rm.freeze_calls(), 1u);
  EXPECT_EQ(rm.unfreeze_calls(), 1u);
}

TEST(ResourceManagerTest, ReservedAndAsleepAreNotCandidates) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  ResourceManager rm(&dc);
  dc.SetReserved(ServerId(1), true);
  EXPECT_FALSE(rm.IsCandidate(ServerId(1)));
  dc.SleepServer(ServerId(2));
  EXPECT_FALSE(rm.IsCandidate(ServerId(2)));
  dc.WakeServer(ServerId(2));
  EXPECT_FALSE(rm.IsCandidate(ServerId(2)));  // Still booting.
  sim.RunUntil(SimTime::Minutes(1));
  EXPECT_TRUE(rm.IsCandidate(ServerId(2)));
}

TEST(ResourceManagerTest, CanHostChecksBothStateAndFit) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  ResourceManager rm(&dc);
  Resources big{12.0, 12.0};
  EXPECT_TRUE(rm.CanHost(ServerId(0), big));
  ASSERT_TRUE(rm.ClaimContainer(
      ServerId(0), TaskSpec{JobId(1), big, SimTime::Minutes(5)}));
  EXPECT_FALSE(rm.CanHost(ServerId(0), big));          // No room left.
  EXPECT_TRUE(rm.CanHost(ServerId(0), Resources{2.0, 2.0}));
  rm.Freeze(ServerId(0));
  EXPECT_FALSE(rm.CanHost(ServerId(0), Resources{2.0, 2.0}));  // Frozen.
}

TEST(ResourceManagerTest, ClaimRefusesNonCandidates) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  ResourceManager rm(&dc);
  rm.Freeze(ServerId(0));
  EXPECT_FALSE(rm.ClaimContainer(
      ServerId(0), TaskSpec{JobId(1), Resources{1.0, 1.0},
                            SimTime::Minutes(5)}));
  EXPECT_EQ(rm.containers_claimed(), 0u);
  // Unlike DataCenter::PlaceTask, the low level enforces the frozen flag
  // itself — the upper level cannot bypass the candidate list.
  EXPECT_TRUE(dc.PlaceTask(ServerId(0),
                           TaskSpec{JobId(1), Resources{1.0, 1.0},
                                    SimTime::Minutes(5)}));
}

TEST(ResourceManagerTest, ClaimBindsResourcesAndRunsTask) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  ResourceManager rm(&dc);
  ASSERT_TRUE(rm.ClaimContainer(
      ServerId(3), TaskSpec{JobId(9), Resources{4.0, 8.0},
                            SimTime::Minutes(10)}));
  EXPECT_EQ(rm.containers_claimed(), 1u);
  EXPECT_EQ(dc.server(ServerId(3)).num_tasks(), 1u);
  sim.RunUntil(SimTime::Minutes(11));
  EXPECT_EQ(dc.server(ServerId(3)).num_tasks(), 0u);
}

TEST(ResourceManagerTest, FreezeDoesNotTouchRunningContainers) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  ResourceManager rm(&dc);
  ASSERT_TRUE(rm.ClaimContainer(
      ServerId(0), TaskSpec{JobId(1), Resources{4.0, 4.0},
                            SimTime::Minutes(10)}));
  rm.Freeze(ServerId(0));
  sim.RunUntil(SimTime::Minutes(11));
  EXPECT_EQ(dc.server(ServerId(0)).num_tasks(), 0u);  // Finished normally.
}

}  // namespace
}  // namespace ampere
