#include "src/cluster/datacenter.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/check.h"

namespace ampere {
namespace {

TopologyConfig SmallTopology() {
  TopologyConfig config;
  config.num_rows = 2;
  config.racks_per_row = 2;
  config.servers_per_rack = 4;
  config.server_capacity = Resources{16.0, 64.0};
  config.power_model.rated_watts = 250.0;
  config.power_model.idle_fraction = 0.65;
  return config;
}

TEST(DataCenterTest, TopologyCountsAndMembership) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  EXPECT_EQ(dc.num_rows(), 2);
  EXPECT_EQ(dc.num_racks(), 4);
  EXPECT_EQ(dc.num_servers(), 16);
  EXPECT_EQ(dc.servers_in_row(RowId(0)).size(), 8u);
  EXPECT_EQ(dc.servers_in_rack(RackId(0)).size(), 4u);
  EXPECT_EQ(dc.racks_in_row(RowId(1)).size(), 2u);
  // Every server knows its row.
  for (ServerId id : dc.servers_in_row(RowId(1))) {
    EXPECT_EQ(dc.row_of(id), RowId(1));
  }
}

TEST(DataCenterTest, RatedProvisioningBudgets) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  EXPECT_DOUBLE_EQ(dc.row_budget_watts(RowId(0)), 8 * 250.0);
  EXPECT_DOUBLE_EQ(dc.rack_budget_watts(RackId(0)), 4 * 250.0);
  EXPECT_DOUBLE_EQ(dc.total_budget_watts(), 16 * 250.0);
}

TEST(DataCenterTest, InitialPowerIsIdle) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  double idle = 250.0 * 0.65;
  EXPECT_NEAR(dc.total_power_watts(), 16 * idle, 1e-9);
  EXPECT_NEAR(dc.row_power_watts(RowId(0)), 8 * idle, 1e-9);
  EXPECT_NEAR(dc.server_power_watts(ServerId(0)), idle, 1e-9);
}

TEST(DataCenterTest, PlaceTaskRaisesPowerAndUtilization) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  ServerId target(0);
  TaskSpec spec{JobId(1), Resources{8.0, 16.0}, SimTime::Minutes(5)};
  ASSERT_TRUE(dc.PlaceTask(target, spec));
  const Server& server = dc.server(target);
  EXPECT_DOUBLE_EQ(server.utilization(), 0.5);
  double expected = 162.5 + 0.5 * 87.5;
  EXPECT_NEAR(server.power_watts(), expected, 1e-9);
  EXPECT_NEAR(dc.row_power_watts(RowId(0)), 7 * 162.5 + expected, 1e-9);
}

TEST(DataCenterTest, PlaceTaskRejectsWhenFull) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  ServerId target(0);
  ASSERT_TRUE(dc.PlaceTask(
      target, TaskSpec{JobId(1), Resources{12.0, 32.0}, SimTime::Minutes(5)}));
  EXPECT_FALSE(dc.PlaceTask(
      target, TaskSpec{JobId(2), Resources{8.0, 8.0}, SimTime::Minutes(5)}));
  // Memory limits are also enforced.
  EXPECT_FALSE(dc.PlaceTask(
      target, TaskSpec{JobId(3), Resources{1.0, 64.0}, SimTime::Minutes(5)}));
}

TEST(DataCenterTest, DuplicateJobOnServerThrows) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  TaskSpec spec{JobId(1), Resources{1.0, 1.0}, SimTime::Minutes(5)};
  ASSERT_TRUE(dc.PlaceTask(ServerId(0), spec));
  EXPECT_THROW(dc.PlaceTask(ServerId(0), spec), CheckFailure);
}

TEST(DataCenterTest, TaskCompletesOnScheduleAndRestoresPower) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  std::vector<std::pair<int32_t, int32_t>> completions;
  dc.SetTaskCompletionListener([&](ServerId s, JobId j) {
    completions.emplace_back(s.value(), j.value());
  });
  ASSERT_TRUE(dc.PlaceTask(
      ServerId(3), TaskSpec{JobId(7), Resources{4.0, 8.0},
                            SimTime::Minutes(10)}));
  sim.RunUntil(SimTime::Minutes(9.9));
  EXPECT_TRUE(completions.empty());
  sim.RunUntil(SimTime::Minutes(10.1));
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0], (std::pair<int32_t, int32_t>{3, 7}));
  EXPECT_DOUBLE_EQ(dc.server(ServerId(3)).utilization(), 0.0);
  EXPECT_NEAR(dc.server_power_watts(ServerId(3)), 162.5, 1e-9);
}

TEST(DataCenterTest, AggregatesStayConsistentUnderChurn) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  // Launch staggered tasks across all servers.
  for (int32_t s = 0; s < dc.num_servers(); ++s) {
    dc.PlaceTask(ServerId(s),
                 TaskSpec{JobId(100 + s), Resources{4.0, 4.0},
                          SimTime::Minutes(1 + s % 7)});
  }
  for (int step = 0; step < 10; ++step) {
    sim.RunUntil(SimTime::Minutes(step));
    double sum_servers = 0.0;
    for (int32_t s = 0; s < dc.num_servers(); ++s) {
      sum_servers += dc.server_power_watts(ServerId(s));
    }
    EXPECT_NEAR(dc.total_power_watts(), sum_servers, 1e-6);
    double sum_rows = dc.row_power_watts(RowId(0)) + dc.row_power_watts(RowId(1));
    EXPECT_NEAR(dc.total_power_watts(), sum_rows, 1e-6);
  }
}

TEST(DataCenterTest, FrozenFlagDoesNotAffectRunningTasks) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  int completions = 0;
  dc.SetTaskCompletionListener([&](ServerId, JobId) { ++completions; });
  ASSERT_TRUE(dc.PlaceTask(
      ServerId(0),
      TaskSpec{JobId(1), Resources{2.0, 2.0}, SimTime::Minutes(5)}));
  dc.SetFrozen(ServerId(0), true);
  EXPECT_TRUE(dc.server(ServerId(0)).frozen());
  sim.RunUntil(SimTime::Minutes(6));
  EXPECT_EQ(completions, 1);  // The task finished normally while frozen.
  dc.SetFrozen(ServerId(0), false);
  EXPECT_FALSE(dc.server(ServerId(0)).frozen());
}

TEST(DataCenterTest, ReservedFlagRoundTrips) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  EXPECT_FALSE(dc.server(ServerId(5)).reserved());
  dc.SetReserved(ServerId(5), true);
  EXPECT_TRUE(dc.server(ServerId(5)).reserved());
}

TEST(DataCenterTest, PowerOfServersSumsSubset) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  std::vector<ServerId> subset{ServerId(0), ServerId(2), ServerId(4)};
  EXPECT_NEAR(dc.PowerOfServers(subset), 3 * 162.5, 1e-9);
}

// --- DVFS capping behaviour ---

TopologyConfig CappedTopology() {
  TopologyConfig config = SmallTopology();
  config.num_rows = 1;
  config.racks_per_row = 1;
  config.servers_per_rack = 4;
  config.capping_enabled = true;
  // Budget well below full demand (idle 650 + dynamic 350 = 1000 W) but
  // reachable at the ladder's minimum step (650 + 350*0.5 = 825 W).
  config.row_budget_watts = 4 * 162.5 + 200.0;
  return config;
}

TEST(DataCenterCappingTest, CapEngagesWhenRowExceedsBudget) {
  Simulation sim;
  DataCenter dc(CappedTopology(), &sim);
  // Fill all four servers: dynamic demand = 4 * 87.5 = 350 W >> 100 W slack.
  for (int32_t s = 0; s < 4; ++s) {
    ASSERT_TRUE(dc.PlaceTask(
        ServerId(s),
        TaskSpec{JobId(s), Resources{16.0, 16.0}, SimTime::Minutes(10)}));
  }
  EXPECT_LT(dc.row_throttle(RowId(0)), 1.0);
  EXPECT_LE(dc.row_power_watts(RowId(0)), 4 * 162.5 + 200.0 + 1e-9);
  EXPECT_TRUE(dc.IsServerCapped(ServerId(0)));
}

TEST(DataCenterCappingTest, CapReleasesWhenLoadDrains) {
  Simulation sim;
  DataCenter dc(CappedTopology(), &sim);
  for (int32_t s = 0; s < 4; ++s) {
    ASSERT_TRUE(dc.PlaceTask(
        ServerId(s),
        TaskSpec{JobId(s), Resources{16.0, 16.0}, SimTime::Minutes(10)}));
  }
  ASSERT_LT(dc.row_throttle(RowId(0)), 1.0);
  // Tasks run at half speed -> they need 20 min, not 10.
  sim.RunUntil(SimTime::Minutes(15));
  EXPECT_LT(dc.row_throttle(RowId(0)), 1.0);
  sim.RunUntil(SimTime::Minutes(25));
  EXPECT_DOUBLE_EQ(dc.row_throttle(RowId(0)), 1.0);
  EXPECT_GT(dc.row_capped_time(RowId(0)), SimTime::Minutes(15));
}

TEST(DataCenterCappingTest, ThrottlingStretchesTaskWallClock) {
  Simulation sim;
  DataCenter dc(CappedTopology(), &sim);
  int completions = 0;
  dc.SetTaskCompletionListener([&](ServerId, JobId) { ++completions; });
  for (int32_t s = 0; s < 4; ++s) {
    ASSERT_TRUE(dc.PlaceTask(
        ServerId(s),
        TaskSpec{JobId(s), Resources{16.0, 16.0}, SimTime::Minutes(10)}));
  }
  double throttle = dc.row_throttle(RowId(0));
  ASSERT_LT(throttle, 1.0);
  sim.RunUntil(SimTime::Minutes(10.5));
  EXPECT_EQ(completions, 0);  // Would have finished at 10 min uncapped.
  sim.RunUntil(SimTime::Minutes(10.0 / throttle + 1.0));
  EXPECT_EQ(completions, 4);
}

TEST(DataCenterCappingTest, LoweredCappingBudgetTakesEffect) {
  Simulation sim;
  TopologyConfig config = CappedTopology();
  config.row_budget_watts = 0.0;  // Rated: 1000 W, never violated.
  DataCenter dc(config, &sim);
  ASSERT_TRUE(dc.PlaceTask(
      ServerId(0),
      TaskSpec{JobId(0), Resources{16.0, 16.0}, SimTime::Minutes(10)}));
  EXPECT_DOUBLE_EQ(dc.row_throttle(RowId(0)), 1.0);
  // Operator narrows the enforcement target below current draw.
  dc.SetRowCappingBudget(RowId(0), dc.row_power_watts(RowId(0)) - 20.0);
  EXPECT_LT(dc.row_throttle(RowId(0)), 1.0);
}

TEST(DataCenterCappingTest, DisablingCappingReleasesThrottle) {
  Simulation sim;
  DataCenter dc(CappedTopology(), &sim);
  for (int32_t s = 0; s < 4; ++s) {
    ASSERT_TRUE(dc.PlaceTask(
        ServerId(s),
        TaskSpec{JobId(s), Resources{16.0, 16.0}, SimTime::Minutes(10)}));
  }
  ASSERT_LT(dc.row_throttle(RowId(0)), 1.0);
  dc.SetCappingEnabled(false);
  EXPECT_DOUBLE_EQ(dc.row_throttle(RowId(0)), 1.0);
  EXPECT_FALSE(dc.IsServerCapped(ServerId(0)));
}

TEST(DataCenterCappingTest, BreakerTripsWithoutCapping) {
  Simulation sim;
  TopologyConfig config = CappedTopology();
  config.capping_enabled = false;
  config.breaker.tolerance = 1.05;
  config.breaker.trip_delay = SimTime::Seconds(30);
  DataCenter dc(config, &sim);
  for (int32_t s = 0; s < 4; ++s) {
    ASSERT_TRUE(dc.PlaceTask(
        ServerId(s),
        TaskSpec{JobId(s), Resources{16.0, 16.0}, SimTime::Minutes(10)}));
  }
  // Severe sustained overload with no protection; the breaker needs to see
  // observations, which arrive with task events. Schedule a nudge task.
  for (int t = 1; t <= 60; ++t) {
    sim.ScheduleAt(SimTime::Seconds(t), [&dc, t] {
      dc.PlaceTask(ServerId(0), TaskSpec{JobId(1000 + t), Resources{0.0, 0.0},
                                         SimTime::Minutes(1)});
    });
  }
  sim.RunUntil(SimTime::Minutes(2));
  EXPECT_TRUE(dc.AnyBreakerTripped());
}

TEST(DataCenterTest, ExactAccessorsMatchIncrementalAggregates) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  for (int32_t s = 0; s < 8; ++s) {
    ASSERT_TRUE(dc.PlaceTask(
        ServerId(s),
        TaskSpec{JobId(s), Resources{8.0, 16.0}, SimTime::Minutes(5)}));
  }
  // A handful of mutations introduces no measurable drift yet: exact and
  // incremental agree tightly at every level.
  for (int32_t r = 0; r < dc.num_rows(); ++r) {
    EXPECT_NEAR(dc.row_power_watts(RowId(r)), dc.ExactRowPowerWatts(RowId(r)),
                1e-9);
  }
  for (int32_t k = 0; k < dc.num_racks(); ++k) {
    EXPECT_NEAR(dc.rack_power_watts(RackId(k)),
                dc.ExactRackPowerWatts(RackId(k)), 1e-9);
  }
  EXPECT_NEAR(dc.total_power_watts(), dc.ExactTotalPowerWatts(), 1e-9);
}

TEST(DataCenterTest, ResummateSnapsAggregatesToExactSums) {
  Simulation sim;
  DataCenter dc(SmallTopology(), &sim);
  for (int32_t s = 0; s < 16; ++s) {
    ASSERT_TRUE(dc.PlaceTask(
        ServerId(s),
        TaskSpec{JobId(s), Resources{4.0, 8.0}, SimTime::Minutes(5)}));
  }
  EXPECT_GT(dc.power_mutations_since_resum(), 0u);
  dc.ResummatePowerAggregates();
  EXPECT_EQ(dc.power_mutations_since_resum(), 0u);
  // After a snap the aggregates are bitwise equal to the exact sums (the
  // resummation and the exact accessors use the same summation order).
  for (int32_t r = 0; r < dc.num_rows(); ++r) {
    EXPECT_EQ(dc.row_power_watts(RowId(r)), dc.ExactRowPowerWatts(RowId(r)));
  }
  for (int32_t k = 0; k < dc.num_racks(); ++k) {
    EXPECT_EQ(dc.rack_power_watts(RackId(k)),
              dc.ExactRackPowerWatts(RackId(k)));
  }
  EXPECT_EQ(dc.total_power_watts(), dc.ExactTotalPowerWatts());
  // Resummation is idempotent.
  dc.ResummatePowerAggregates();
  EXPECT_EQ(dc.total_power_watts(), dc.ExactTotalPowerWatts());
}

}  // namespace
}  // namespace ampere
