#include "src/control/spcp.h"

#include <gtest/gtest.h>

#include <tuple>

#include "src/common/check.h"

namespace ampere {
namespace {

TEST(SpcpTest, NoControlNeededBelowBudget) {
  EXPECT_DOUBLE_EQ(SolveSpcp(0.90, 0.02, 1.0, 0.05), 0.0);
  EXPECT_DOUBLE_EQ(SolveSpcp(0.98, 0.02, 1.0, 0.05), 0.0);
}

TEST(SpcpTest, ExactClosedForm) {
  // u = (P + E - PM) / kr.
  EXPECT_NEAR(SolveSpcp(0.99, 0.02, 1.0, 0.05), 0.01 / 0.05, 1e-12);
  EXPECT_NEAR(SolveSpcp(1.01, 0.03, 1.0, 0.08), 0.04 / 0.08, 1e-12);
}

TEST(SpcpTest, SaturatesAtOne) {
  EXPECT_DOUBLE_EQ(SolveSpcp(1.20, 0.05, 1.0, 0.05), 1.0);
}

TEST(SpcpTest, ZeroKrThrows) {
  EXPECT_THROW(SolveSpcp(0.9, 0.02, 1.0, 0.0), CheckFailure);
}

TEST(SpcpTest, SolutionSatisfiesConstraintWhenFeasible) {
  // For any state where a feasible control exists, applying the closed-form
  // u keeps the next-step power within budget.
  for (double p = 0.8; p <= 1.04; p += 0.01) {
    for (double e = 0.0; e <= 0.04; e += 0.01) {
      double kr = 0.06;
      double u = SolveSpcp(p, e, 1.0, kr);
      double p_next = p + e - kr * u;
      if (p + e - kr <= 1.0) {  // Feasible instance.
        EXPECT_LE(p_next, 1.0 + 1e-12) << "p=" << p << " e=" << e;
      }
    }
  }
}

TEST(SpcpTest, SolutionIsMinimal) {
  // Any smaller u violates the constraint on binding instances.
  double u = SolveSpcp(1.00, 0.02, 1.0, 0.05);
  ASSERT_GT(u, 0.0);
  double smaller = u - 1e-6;
  EXPECT_GT(1.00 + 0.02 - 0.05 * smaller, 1.0);
}

TEST(ThresholdRatioTest, DefinesSafetyMargin) {
  EXPECT_DOUBLE_EQ(ThresholdRatio(0.025, 1.0), 0.975);
  EXPECT_DOUBLE_EQ(ThresholdRatio(0.0, 1.0), 1.0);
}

TEST(FreezeRatioForTest, ZeroBelowThreshold) {
  EXPECT_DOUBLE_EQ(FreezeRatioFor(0.97, 0.025, 1.0, 0.05, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(FreezeRatioFor(0.975, 0.025, 1.0, 0.05, 0.5), 0.0);
}

TEST(FreezeRatioForTest, RampsAboveThreshold) {
  double u = FreezeRatioFor(0.99, 0.025, 1.0, 0.05, 0.5);
  EXPECT_NEAR(u, (0.99 + 0.025 - 1.0) / 0.05, 1e-12);
}

TEST(FreezeRatioForTest, RespectsOperationalCap) {
  EXPECT_DOUBLE_EQ(FreezeRatioFor(1.05, 0.03, 1.0, 0.05, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(FreezeRatioFor(1.05, 0.03, 1.0, 0.05, 1.0), 1.0);
}

TEST(FreezeRatioForTest, InvalidCapThrows) {
  EXPECT_THROW(FreezeRatioFor(0.9, 0.02, 1.0, 0.05, 0.0), CheckFailure);
  EXPECT_THROW(FreezeRatioFor(0.9, 0.02, 1.0, 0.05, 1.5), CheckFailure);
}

// Fig. 6 shape: the F map is non-decreasing in P_t and continuous at the
// threshold.
class FreezeRatioMonotoneTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(FreezeRatioMonotoneTest, MonotoneNondecreasingInPower) {
  auto [et, kr] = GetParam();
  double prev = -1.0;
  for (double p = 0.5; p <= 1.3; p += 0.005) {
    double u = FreezeRatioFor(p, et, 1.0, kr, 0.5);
    EXPECT_GE(u, prev - 1e-12);
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 0.5);
    prev = u;
  }
}

INSTANTIATE_TEST_SUITE_P(
    EtKrGrid, FreezeRatioMonotoneTest,
    ::testing::Combine(::testing::Values(0.0, 0.01, 0.03, 0.08),
                       ::testing::Values(0.02, 0.05, 0.12)));

}  // namespace
}  // namespace ampere
