#include "src/workload/duration_model.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/check.h"
#include "src/stats/descriptive.h"
#include "src/stats/percentile.h"

namespace ampere {
namespace {

std::vector<double> SampleMinutes(const DurationModel& model, int n,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(model.Sample(rng).minutes());
  }
  return out;
}

// The Fig. 7 calibration points: mean ~9 min, ~40 % <= 2 min, ~96 % <= 50.
TEST(DurationModelTest, MatchesFigure7Calibration) {
  DurationModel model;
  auto samples = SampleMinutes(model, 200000, 7);
  Summary s = Summarize(samples);
  EXPECT_NEAR(s.mean, 9.0, 0.5);
  EmpiricalCdf cdf{std::move(samples)};
  EXPECT_NEAR(cdf.Evaluate(2.0), 0.40, 0.02);
  EXPECT_NEAR(cdf.Evaluate(50.0), 0.96, 0.015);
}

TEST(DurationModelTest, TruncatedMeanMatchesEmpirical) {
  DurationModelParams params;
  params.max_minutes = 40.0;  // Aggressive clamp to exercise the formula.
  DurationModel model(params);
  auto samples = SampleMinutes(model, 300000, 13);
  Summary s = Summarize(samples);
  EXPECT_NEAR(model.TruncatedMeanMinutes(), s.mean, 0.1);
  // And the clamp visibly lowers the mean vs the untruncated formula.
  EXPECT_LT(model.TruncatedMeanMinutes(),
            model.UntruncatedMeanMinutes() - 0.5);
}

TEST(DurationModelTest, RespectsTruncationBounds) {
  DurationModelParams params;
  params.min_minutes = 0.5;
  params.max_minutes = 30.0;
  DurationModel model(params);
  for (double v : SampleMinutes(model, 20000, 8)) {
    EXPECT_GE(v, 0.5);
    EXPECT_LE(v, 30.0);
  }
}

TEST(DurationModelTest, UntruncatedMeanFormula) {
  DurationModelParams params;
  params.log_mean_minutes = 1.0;
  params.log_sigma = 0.5;
  DurationModel model(params);
  EXPECT_NEAR(model.UntruncatedMeanMinutes(), std::exp(1.0 + 0.125), 1e-12);
}

TEST(DurationModelTest, InvalidParamsThrow) {
  DurationModelParams params;
  params.log_sigma = 0.0;
  EXPECT_THROW(DurationModel{params}, CheckFailure);
  params = DurationModelParams{};
  params.min_minutes = 0.0;
  EXPECT_THROW(DurationModel{params}, CheckFailure);
  params = DurationModelParams{};
  params.max_minutes = params.min_minutes;
  EXPECT_THROW(DurationModel{params}, CheckFailure);
}

TEST(DurationModelTest, DeterministicGivenSeed) {
  DurationModel model;
  auto a = SampleMinutes(model, 100, 99);
  auto b = SampleMinutes(model, 100, 99);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace ampere
