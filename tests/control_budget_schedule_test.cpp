// BudgetSchedule P(t): evaluation semantics, spec parsing, and the
// closed-loop wiring that applies a time-varying cap to the single-DC
// controller and the campus allocator.
//
// Covered here:
//   1. ScaleAt — step/ramp/diurnal evaluation, [start, end) boundary
//      semantics at exact schedule-boundary ticks, phase composition.
//   2. ParseBudgetSchedule — the --budget-schedule grammar, including the
//      malformed-input paths (structured false + message, never a throw).
//   3. Single-DC wiring — the controller's DecisionJournal records the
//      curtailed budget, violations count against the curtailed cap, and
//      the constant schedule stays bit-identical to no schedule at all.
//   4. Campus wiring — a mid-window curtailment forces an extra re-plan
//      (beyond the 15-minute cadence) and scales the allocator's total.
//   5. Chaos x P(t) — every fault preset rides the curtailment with zero
//      breaker trips.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/control/budget_schedule.h"
#include "src/core/campus_experiment.h"
#include "src/core/controller.h"
#include "src/core/experiment.h"
#include "src/faults/presets.h"
#include "src/obs/journal.h"

namespace ampere {
namespace {

constexpr uint64_t kSeed = 20160622;

// --- 1. Evaluation semantics ---------------------------------------------

TEST(BudgetScheduleTest, DefaultIsConstantOne) {
  BudgetSchedule schedule;
  EXPECT_TRUE(schedule.IsConstant());
  EXPECT_EQ(schedule.ScaleAt(SimTime()), 1.0);
  EXPECT_EQ(schedule.ScaleAt(SimTime::Hours(13)), 1.0);
  EXPECT_EQ(schedule.MinScaleOver(SimTime::Hours(24)), 1.0);
}

TEST(BudgetScheduleTest, StepWindowIsHalfOpen) {
  BudgetSchedule schedule;
  schedule.AddStep(SimTime::Minutes(10), SimTime::Minutes(20), 0.8);
  EXPECT_FALSE(schedule.IsConstant());
  // Exactly at the start boundary: inside. Exactly at the end: outside.
  EXPECT_EQ(schedule.ScaleAt(SimTime::Minutes(10) - SimTime::Micros(1)), 1.0);
  EXPECT_EQ(schedule.ScaleAt(SimTime::Minutes(10)), 0.8);
  EXPECT_EQ(schedule.ScaleAt(SimTime::Minutes(20) - SimTime::Micros(1)), 0.8);
  EXPECT_EQ(schedule.ScaleAt(SimTime::Minutes(20)), 1.0);
  EXPECT_EQ(schedule.MinScaleOver(SimTime::Hours(1)), 0.8);
}

TEST(BudgetScheduleTest, RampInterpolatesLinearly) {
  BudgetSchedule schedule;
  schedule.AddRamp(SimTime::Minutes(0), SimTime::Minutes(10), 1.0, 0.5);
  EXPECT_EQ(schedule.ScaleAt(SimTime::Minutes(0)), 1.0);
  EXPECT_DOUBLE_EQ(schedule.ScaleAt(SimTime::Minutes(5)), 0.75);
  EXPECT_DOUBLE_EQ(schedule.ScaleAt(SimTime::Minutes(9)), 0.55);
  // End boundary exits the phase: back to the ambient 1.0.
  EXPECT_EQ(schedule.ScaleAt(SimTime::Minutes(10)), 1.0);
}

TEST(BudgetScheduleTest, OverlappingPhasesMultiply) {
  BudgetSchedule schedule;
  schedule.AddStep(SimTime::Minutes(0), SimTime::Minutes(30), 0.9);
  schedule.AddStep(SimTime::Minutes(15), SimTime::Minutes(45), 0.8);
  EXPECT_DOUBLE_EQ(schedule.ScaleAt(SimTime::Minutes(10)), 0.9);
  EXPECT_DOUBLE_EQ(schedule.ScaleAt(SimTime::Minutes(20)), 0.9 * 0.8);
  EXPECT_DOUBLE_EQ(schedule.ScaleAt(SimTime::Minutes(40)), 0.8);
}

TEST(BudgetScheduleTest, DiurnalDipsAtThePeakHour) {
  BudgetSchedule schedule;
  schedule.SetDiurnal(0.2, 14.0);
  EXPECT_FALSE(schedule.IsConstant());
  // Deepest at the peak hour, shallowest 12 h away.
  EXPECT_NEAR(schedule.ScaleAt(SimTime::Hours(14)), 0.8, 1e-12);
  EXPECT_NEAR(schedule.ScaleAt(SimTime::Hours(2)), 1.0, 1e-12);
  // Periodic: hour 38 = hour 14 next day.
  EXPECT_NEAR(schedule.ScaleAt(SimTime::Hours(38)), 0.8, 1e-12);
  EXPECT_NEAR(schedule.MinScaleOver(SimTime::Hours(24)), 0.8, 1e-12);
}

// --- 2. Spec parsing ------------------------------------------------------

TEST(BudgetScheduleParseTest, ParsesStepRampDiurnal) {
  BudgetSchedule schedule;
  std::string error;
  ASSERT_TRUE(ParseBudgetSchedule(
      "step:60:100:0.85;ramp:100:120:0.85:1.0;diurnal:0.1:15", &schedule,
      &error))
      << error;
  EXPECT_FALSE(schedule.IsConstant());
  ASSERT_EQ(schedule.phases().size(), 2u);
  EXPECT_EQ(schedule.diurnal_depth(), 0.1);
  EXPECT_DOUBLE_EQ(schedule.phases()[0].scale_begin, 0.85);
  EXPECT_EQ(schedule.phases()[1].end, SimTime::Minutes(120));
  // The diurnal factor at t=0 composes with nothing else active there.
  EXPECT_LT(schedule.ScaleAt(SimTime()), 1.0);
}

TEST(BudgetScheduleParseTest, EmptySpecIsConstant) {
  BudgetSchedule schedule;
  std::string error;
  ASSERT_TRUE(ParseBudgetSchedule("", &schedule, &error)) << error;
  EXPECT_TRUE(schedule.IsConstant());
}

TEST(BudgetScheduleParseTest, MalformedSpecsFailStructurally) {
  const std::vector<std::string> bad = {
      "step:60:100",            // Too few fields.
      "step:100:60:0.85",       // Empty window.
      "step:-5:60:0.85",        // Negative start.
      "step:0:60:0",            // Non-positive scale.
      "ramp:0:60:1.0",          // Too few fields.
      "ramp:0:60:1.0:-0.5",     // Negative target.
      "diurnal:1.5:14",         // Depth out of [0, 1).
      "step:a:b:c",             // Non-numeric.
      "step::60:0.9",           // Empty field.
      "sine:0:60:0.9",          // Unknown kind.
      "step",                   // No arguments at all.
  };
  for (const std::string& spec : bad) {
    BudgetSchedule schedule;
    std::string error;
    EXPECT_FALSE(ParseBudgetSchedule(spec, &schedule, &error))
        << "'" << spec << "' parsed";
    EXPECT_FALSE(error.empty()) << "'" << spec << "' left no error message";
  }
}

// --- 3. Single-DC closed-loop wiring -------------------------------------

ExperimentConfig LoopConfig() {
  ExperimentConfig config;
  config.seed = kSeed;
  config.topology.num_rows = 2;
  config.topology.racks_per_row = 3;
  config.topology.servers_per_rack = 8;  // 48 servers.
  config.workload.arrivals.base_rate_per_min = ArrivalRateForNormalizedPower(
      config.topology, config.workload, 0.97, 0.25);
  config.controller.effect = FreezeEffectModel(0.05);
  config.controller.et = EtEstimator::Constant(0.02);
  config.warmup = SimTime::Minutes(30);
  config.duration = SimTime::Hours(2);
  return config;
}

TEST(BudgetScheduleLoopTest, ConstantScheduleIsBitIdenticalToNoSchedule) {
  ControlledExperiment plain(LoopConfig());
  plain.Run();
  const std::string plain_journal = plain.controller()->journal().ToCsv();

  // An explicitly-constructed constant schedule (no phases, no diurnal)
  // must add no events and change no bytes.
  ExperimentConfig config = LoopConfig();
  config.budget_schedule = BudgetSchedule();
  ControlledExperiment scheduled(config);
  scheduled.Run();
  EXPECT_EQ(scheduled.controller()->journal().ToCsv(), plain_journal);
}

TEST(BudgetScheduleLoopTest, CurtailmentReachesTheControllerWithinAMinute) {
  ExperimentConfig config = LoopConfig();
  config.budget_schedule.AddStep(SimTime::Minutes(60), SimTime::Minutes(90),
                                 0.85);
  ControlledExperiment experiment(config);
  const ExperimentResult result = experiment.Run();
  EXPECT_EQ(result.budget_scale_min, 0.85);

  // The journal's budget_watts column is the audit trail: ticks inside the
  // curtailment window must run against 0.85 x the baseline budget, ticks
  // outside against the full budget. The budget updates at +0.5 s and the
  // controller ticks at +1 s, so minute 60's tick (measured clock) already
  // sees the curtailed cap.
  const double full = experiment.experiment_budget_watts();
  const std::vector<obs::DecisionRecord> records =
      experiment.controller()->journal().Query(
          SimTime(), SimTime::Hours(1000), ControlledExperiment::kExperimentGroup);
  ASSERT_FALSE(records.empty());
  size_t curtailed_ticks = 0, full_ticks = 0;
  const SimTime measure_start = config.warmup;
  for (const auto& rec : records) {
    const SimTime measured = rec.time - measure_start;
    if (measured >= SimTime::Minutes(60) && measured < SimTime::Minutes(90)) {
      EXPECT_DOUBLE_EQ(rec.budget_watts, full * 0.85)
          << "at measured minute " << measured.minutes();
      ++curtailed_ticks;
    } else {
      EXPECT_DOUBLE_EQ(rec.budget_watts, full)
          << "at measured minute " << measured.minutes();
      ++full_ticks;
    }
  }
  EXPECT_EQ(curtailed_ticks, 30u);
  EXPECT_GE(full_ticks, 89u);
}

TEST(BudgetScheduleLoopTest, RampRestoresTheFullBudgetByTheEnd) {
  ExperimentConfig config = LoopConfig();
  config.budget_schedule.AddStep(SimTime::Minutes(40), SimTime::Minutes(60),
                                 0.9);
  config.budget_schedule.AddRamp(SimTime::Minutes(60), SimTime::Minutes(80),
                                 0.9, 1.0);
  ControlledExperiment experiment(config);
  const ExperimentResult result = experiment.Run();
  EXPECT_EQ(result.budget_scale_min, 0.9);
  EXPECT_FALSE(result.breaker_tripped);

  const double full = experiment.experiment_budget_watts();
  const std::vector<obs::DecisionRecord> records =
      experiment.controller()->journal().Query(
          SimTime(), SimTime::Hours(1000), ControlledExperiment::kExperimentGroup);
  ASSERT_FALSE(records.empty());
  const SimTime measure_start = config.warmup;
  double last_budget = 0.0;
  bool saw_mid_ramp = false;
  for (const auto& rec : records) {
    const SimTime measured = rec.time - measure_start;
    if (measured >= SimTime::Minutes(70) && measured < SimTime::Minutes(71)) {
      // Mid-ramp: half-way back up (the budget event runs 0.5 s past the
      // minute mark, so allow that half-second of ramp slope).
      EXPECT_NEAR(rec.budget_watts, full * 0.95, full * 1e-3);
      saw_mid_ramp = true;
    }
    last_budget = rec.budget_watts;
  }
  EXPECT_TRUE(saw_mid_ramp);
  EXPECT_DOUBLE_EQ(last_budget, full);  // Fully restored by the final tick.
}

// --- 4. Campus wiring -----------------------------------------------------

ExperimentConfig CampusConfig() {
  ExperimentConfig config = LoopConfig();
  config.duration = SimTime::Hours(1);
  config.campus.enabled = true;
  config.campus.num_datacenters = 4;
  config.campus.dc_target_power = {0.99, 0.95, 0.90, 0.85};
  config.campus.allocator.replan_interval = SimTime::Minutes(15);
  return config;
}

TEST(BudgetScheduleCampusTest, MidWindowCurtailmentForcesAnExtraReplan) {
  // Baseline cadence: a 1 h window re-plans at +5, +20, +35, +50 min.
  CampusExperiment baseline(CampusConfig());
  const CampusResult base_result = baseline.Run();

  // Curtail from minute 22 (mid-window between the +20 and +35 plans) to
  // minute 40. The minute-22 scale change and the minute-40 restoration
  // each force an immediate re-plan, so the curtailed run re-plans at least
  // twice more than the baseline.
  ExperimentConfig config = CampusConfig();
  config.budget_schedule.AddStep(SimTime::Minutes(22), SimTime::Minutes(40),
                                 0.9);
  CampusExperiment curtailed(config);
  const CampusResult curtailed_result = curtailed.Run();
  EXPECT_GE(curtailed_result.replans, base_result.replans + 2);
  EXPECT_FALSE(curtailed_result.breaker_tripped);

  // The allocator's journal must show the scaled campus total: during the
  // curtailment the per-DC shares sum to 0.9 x the campus cap.
  const double campus_cap = curtailed.allocator().campus_total_watts();
  const std::vector<obs::DecisionRecord> records =
      curtailed.allocator().journal().Query(SimTime(), SimTime::Hours(1000));
  ASSERT_FALSE(records.empty());
  ASSERT_EQ(records.size() % 4, 0u);  // One record per DC per re-plan.
  const SimTime measure_start = config.warmup;
  bool saw_curtailed_plan = false;
  for (size_t i = 0; i + 4 <= records.size(); i += 4) {
    double total = 0.0;
    for (size_t k = 0; k < 4; ++k) {
      total += records[i + k].budget_watts;
    }
    const SimTime measured = records[i].time - measure_start;
    if (measured >= SimTime::Minutes(22) && measured < SimTime::Minutes(40)) {
      EXPECT_NEAR(total, campus_cap * 0.9, campus_cap * 1e-9)
          << "at measured minute " << measured.minutes();
      saw_curtailed_plan = true;
    } else {
      EXPECT_NEAR(total, campus_cap, campus_cap * 1e-9)
          << "at measured minute " << measured.minutes();
    }
  }
  EXPECT_TRUE(saw_curtailed_plan);
}

TEST(BudgetScheduleCampusTest, TraceSectionIsRejectedInCampusRuns) {
  ExperimentConfig config = CampusConfig();
  config.trace.record = true;
  EXPECT_THROW(CampusExperiment{config}, CheckFailure);
}

// --- 5. Chaos presets x P(t) ---------------------------------------------

TEST(BudgetScheduleChaosTest, ZeroBreakerTripsAcrossPresetsUnderCurtailment) {
  size_t preset_index = 0;
  for (const std::string& preset : faults::PresetNames()) {
    ExperimentConfig config = LoopConfig();
    config.faults = *faults::PresetByName(preset);
    config.faults.seed = kSeed + 100 + preset_index++;
    config.budget_schedule.AddStep(SimTime::Minutes(50),
                                   SimTime::Minutes(80), 0.85);
    config.budget_schedule.AddRamp(SimTime::Minutes(80),
                                   SimTime::Minutes(100), 0.85, 1.0);
    const ExperimentResult result = RunExperimentToResult(config);
    EXPECT_FALSE(result.breaker_tripped)
        << "breaker tripped under preset '" << preset
        << "' with the curtailment schedule";
    EXPECT_EQ(result.budget_scale_min, 0.85) << preset;
  }
}

}  // namespace
}  // namespace ampere