#include "src/control/freeze_effect.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace ampere {
namespace {

TEST(FreezeEffectTest, DirectConstruction) {
  FreezeEffectModel model(0.05);
  EXPECT_DOUBLE_EQ(model.kr(), 0.05);
  EXPECT_DOUBLE_EQ(model.Effect(0.5), 0.025);
  EXPECT_DOUBLE_EQ(model.fit_r_squared(), 1.0);
}

TEST(FreezeEffectTest, NonPositiveKrThrows) {
  EXPECT_THROW(FreezeEffectModel{0.0}, CheckFailure);
  EXPECT_THROW(FreezeEffectModel{-0.1}, CheckFailure);
}

TEST(FreezeEffectTest, FitRecoversSlopeFromNoisySamples) {
  Rng rng(2);
  std::vector<FuSample> samples;
  const double true_kr = 0.08;
  for (int i = 0; i < 2000; ++i) {
    double u = rng.Uniform(0.0, 0.6);
    samples.push_back(FuSample{u, true_kr * u + rng.Normal(0.0, 0.01)});
  }
  FreezeEffectModel model = FreezeEffectModel::Fit(samples);
  EXPECT_NEAR(model.kr(), true_kr, 0.005);
  EXPECT_GT(model.fit_r_squared(), 0.5);
}

TEST(FreezeEffectTest, FitRequiresMinimumSamples) {
  std::vector<FuSample> samples{{0.1, 0.01}, {0.2, 0.02}};
  EXPECT_THROW(FreezeEffectModel::Fit(samples, 10), CheckFailure);
  EXPECT_NO_THROW(FreezeEffectModel::Fit(samples, 2));
}

TEST(FreezeEffectTest, FitRejectsNegativeSlope) {
  std::vector<FuSample> samples;
  for (int i = 1; i <= 20; ++i) {
    double u = 0.03 * i;
    samples.push_back(FuSample{u, -0.05 * u});  // Freezing raising power?!
  }
  EXPECT_THROW(FreezeEffectModel::Fit(samples), CheckFailure);
}

}  // namespace
}  // namespace ampere
